#include "io/ftb.h"

#include <array>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "io/file_util.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define FTL_FTB_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FTL_FTB_HAS_MMAP 0
#endif

namespace ftl::io {
namespace {

// ---------------------------------------------------------------------------
// File geometry. All multi-byte fields are little-endian; every section
// starts at an 8-byte-aligned file offset so that mmap'd column
// pointers are naturally aligned for int64_t/double access.

constexpr size_t kHeaderSize = 48;
constexpr size_t kTableOffset = kHeaderSize;
constexpr size_t kEntrySize = 24;  // u32 id, u32 crc32, u64 offset, u64 length
constexpr uint32_t kSectionCount = 8;
constexpr size_t kTableSize = kSectionCount * kEntrySize;
constexpr unsigned char kFtbFooter[8] = {'F', 'T', 'B', 'E', 'N', 'D', '\r', '\n'};
constexpr size_t kFooterSize = sizeof(kFtbFooter);
constexpr size_t kMinFileSize = kHeaderSize + kTableSize + kFooterSize;

// Header field offsets.
constexpr size_t kOffVersion = 8;
constexpr size_t kOffSectionCount = 12;
constexpr size_t kOffNumTrajectories = 16;
constexpr size_t kOffNumRecords = 24;
constexpr size_t kOffFileLength = 32;
constexpr size_t kOffTableCrc = 40;
constexpr size_t kOffHeaderCrc = 44;

// Section ids, in table (and file) order.
enum SectionId : uint32_t {
  kSecRecordOffsets = 1,  // (num_trajectories + 1) × u64
  kSecOwners = 2,         // num_trajectories × u64
  kSecLabelOffsets = 3,   // (num_trajectories + 1) × u64
  kSecLabelPool = 4,      // concatenated label bytes
  kSecTimestamps = 5,     // num_records × i64
  kSecX = 6,              // num_records × f64
  kSecY = 7,              // num_records × f64
  kSecName = 8,           // database display name, UTF-8 bytes
};

bool HostIsLittleEndian() {
  uint16_t probe = 1;
  unsigned char b;
  std::memcpy(&b, &probe, 1);
  return b == 1;
}

size_t AlignUp8(size_t v) { return (v + 7u) & ~size_t{7}; }

/// Version-2 section alignment: every section starts on a 32-byte
/// boundary so 256-bit vector loads on the mmap'd columns (page
/// aligned in memory) are themselves aligned.
size_t AlignUp32(size_t v) { return (v + 31u) & ~size_t{31}; }

/// Alignment the on-disk format guarantees for section offsets:
/// version 1 padded to 8 bytes, version 2 pads to 32.
uint64_t SectionAlignment(uint32_t version) { return version >= 2 ? 32 : 8; }

void StoreU32(std::string* buf, size_t off, uint32_t v) {
  std::memcpy(buf->data() + off, &v, sizeof(v));
}
void StoreU64(std::string* buf, size_t off, uint64_t v) {
  std::memcpy(buf->data() + off, &v, sizeof(v));
}
uint32_t LoadU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t LoadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Setup-time metric handles (DESIGN.md §8 discipline: resolve once,
// never touch the registry per event).
struct FtbMetrics {
  obs::Counter& loads_mmap;
  obs::Counter& loads_heap;
  obs::Counter& bytes_mapped;
  obs::Counter& checksum_failures;
  obs::Histogram& load_us;

  static FtbMetrics& Get() {
    static FtbMetrics m{
        obs::MetricsRegistry::Global().GetCounter(
            "ftl_io_ftb_loads_total{mode=\"mmap\"}"),
        obs::MetricsRegistry::Global().GetCounter(
            "ftl_io_ftb_loads_total{mode=\"heap\"}"),
        obs::MetricsRegistry::Global().GetCounter(
            "ftl_io_ftb_bytes_mapped_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "ftl_io_ftb_checksum_failures_total"),
        obs::MetricsRegistry::Global().GetHistogram("ftl_io_ftb_load_us"),
    };
    return m;
  }
};

// ---------------------------------------------------------------------------
// Storage backends for the reader.

#if FTL_FTB_HAS_MMAP
/// A read-only private mapping of a whole file; unmapped on release.
struct MmapStorage {
  void* base = nullptr;
  size_t size = 0;
  ~MmapStorage() {
    if (base != nullptr) ::munmap(base, size);
  }
};

Result<std::shared_ptr<MmapStorage>> MmapWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for read: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat: " + path);
  }
  auto storage = std::make_shared<MmapStorage>();
  storage->size = static_cast<size_t>(st.st_size);
  if (storage->size > 0) {
    void* base =
        ::mmap(nullptr, storage->size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("mmap failed: " + path);
    }
    storage->base = base;
  }
  ::close(fd);
  return storage;
}
#endif  // FTL_FTB_HAS_MMAP

/// Heap fallback: the whole file in a vector (operator new alignment,
/// ≥ alignof(max_align_t), so column pointers stay 8-byte aligned).
Result<std::shared_ptr<std::vector<char>>> ReadWholeFile(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::streamoff size = f.tellg();
  if (size < 0) return Status::IOError("cannot size: " + path);
  auto buf = std::make_shared<std::vector<char>>(static_cast<size_t>(size));
  f.seekg(0);
  if (size > 0) f.read(buf->data(), size);
  if (!f) return Status::IOError("read failed: " + path);
  return buf;
}

Status CorruptionError(const std::string& path, const std::string& what) {
  return Status::IOError("FTB corruption in " + path + ": " + what);
}

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  // Slicing-by-8: eight derived tables let the loop fold 8 bytes per
  // iteration instead of 1, which matters because load-time validation
  // CRCs every payload byte — the byte-at-a-time kernel capped FTB
  // loads at ~400 MB/s and ate most of the win over CSV parsing.
  static const std::array<std::array<uint32_t, 256>, 8> tables = [] {
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return t;
  }();
  uint32_t c = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  // The 8-byte fold XORs the running CRC into a raw 4-byte load, which
  // is only correct little-endian; BE hosts take the byte loop (the
  // codec itself is LE-only anyway, but Crc32 is public).
  while (HostIsLittleEndian() && len >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
        tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
        tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
        tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) {
    c = tables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool LooksLikeFtb(const void* bytes, size_t len) {
  return len >= sizeof(kFtbMagic) &&
         std::memcmp(bytes, kFtbMagic, sizeof(kFtbMagic)) == 0;
}

bool SniffFtb(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  unsigned char head[sizeof(kFtbMagic)];
  f.read(reinterpret_cast<char*>(head), sizeof(head));
  return f.gcount() == static_cast<std::streamsize>(sizeof(head)) &&
         LooksLikeFtb(head, sizeof(head));
}

Status WriteFtb(const traj::FlatDatabase& db, const std::string& path) {
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "FTB writer requires a little-endian host");
  }
  const traj::FlatDatabase::Columns& c = db.columns();
  const std::string& name = db.name();

  struct Section {
    uint32_t id;
    const void* data;
    size_t length;
    size_t offset = 0;
  };
  Section sections[kSectionCount] = {
      {kSecRecordOffsets, c.record_offsets,
       (c.num_trajectories + 1) * sizeof(uint64_t)},
      {kSecOwners, c.owners, c.num_trajectories * sizeof(uint64_t)},
      {kSecLabelOffsets, c.label_offsets,
       (c.num_trajectories + 1) * sizeof(uint64_t)},
      {kSecLabelPool, c.label_pool, c.label_pool_size},
      {kSecTimestamps, c.ts, c.num_records * sizeof(int64_t)},
      {kSecX, c.xs, c.num_records * sizeof(double)},
      {kSecY, c.ys, c.num_records * sizeof(double)},
      {kSecName, name.data(), name.size()},
  };

  size_t pos = kTableOffset + kTableSize;
  for (Section& s : sections) {
    pos = AlignUp32(pos);
    s.offset = pos;
    pos += s.length;
  }
  pos = AlignUp8(pos);
  const size_t file_length = pos + kFooterSize;

  std::string payload(file_length, '\0');
  std::memcpy(payload.data(), kFtbMagic, sizeof(kFtbMagic));
  StoreU32(&payload, kOffVersion, kFtbVersion);
  StoreU32(&payload, kOffSectionCount, kSectionCount);
  StoreU64(&payload, kOffNumTrajectories, c.num_trajectories);
  StoreU64(&payload, kOffNumRecords, c.num_records);
  StoreU64(&payload, kOffFileLength, file_length);

  for (size_t i = 0; i < kSectionCount; ++i) {
    const Section& s = sections[i];
    // A default-constructed FlatDatabase has null offset-table pointers
    // with one-entry (8-byte) section lengths; the zero-filled payload
    // already encodes those empty prefix-sum tables, so a null source
    // is skipped rather than handed to memcpy (UB).
    if (s.length > 0 && s.data != nullptr) {
      std::memcpy(payload.data() + s.offset, s.data, s.length);
    }
    const size_t e = kTableOffset + i * kEntrySize;
    StoreU32(&payload, e, s.id);
    StoreU32(&payload, e + 4, Crc32(payload.data() + s.offset, s.length));
    StoreU64(&payload, e + 8, s.offset);
    StoreU64(&payload, e + 16, s.length);
  }
  StoreU32(&payload, kOffTableCrc,
           Crc32(payload.data() + kTableOffset, kTableSize));
  StoreU32(&payload, kOffHeaderCrc, Crc32(payload.data(), kOffHeaderCrc));
  std::memcpy(payload.data() + pos, kFtbFooter, kFooterSize);

  return WriteTextFile(path, payload, "io.write_ftb");
}

Status WriteFtb(const traj::TrajectoryDatabase& db, const std::string& path) {
  return WriteFtb(traj::FlatDatabase::FromDatabase(db), path);
}

Result<traj::FlatDatabase> ReadFtb(const std::string& path,
                                   const FtbReadOptions& options,
                                   FtbLoadInfo* info) {
  FTL_FAILPOINT("io.read_ftb");
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "FTB reader requires a little-endian host");
  }
  const auto t0 = std::chrono::steady_clock::now();

  // Acquire the bytes: mmap when asked for and available, heap
  // otherwise. `storage` keeps whichever backing alive for the
  // lifetime of the returned database.
  std::shared_ptr<const void> storage;
  const unsigned char* base = nullptr;
  size_t size = 0;
  bool mmapped = false;
#if FTL_FTB_HAS_MMAP
  if (options.prefer_mmap) {
    auto mapped = MmapWholeFile(path);
    if (!mapped.ok()) return mapped.status();
    base = static_cast<const unsigned char*>(mapped.value()->base);
    size = mapped.value()->size;
    storage = std::move(mapped).value();
    mmapped = true;
  }
#endif
  if (!mmapped) {
    auto heap = ReadWholeFile(path);
    if (!heap.ok()) return heap.status();
    base = reinterpret_cast<const unsigned char*>(heap.value()->data());
    size = heap.value()->size();
    storage = std::move(heap).value();
  }

  // Header, footer, and length validation.
  if (size < kMinFileSize) return CorruptionError(path, "file too small");
  if (!LooksLikeFtb(base, size)) return CorruptionError(path, "bad magic");
  if (Crc32(base, kOffHeaderCrc) != LoadU32(base + kOffHeaderCrc)) {
    FtbMetrics::Get().checksum_failures.Add();
    return CorruptionError(path, "header CRC mismatch");
  }
  const uint32_t version = LoadU32(base + kOffVersion);
  if (version < kFtbMinReadVersion || version > kFtbVersion) {
    return CorruptionError(path, "unsupported version " +
                                     std::to_string(version));
  }
  if (LoadU32(base + kOffSectionCount) != kSectionCount) {
    return CorruptionError(path, "unexpected section count");
  }
  if (LoadU64(base + kOffFileLength) != size) {
    return CorruptionError(path, "file length mismatch (truncated?)");
  }
  if (std::memcmp(base + size - kFooterSize, kFtbFooter, kFooterSize) != 0) {
    return CorruptionError(path, "missing end-of-file marker");
  }
  if (Crc32(base + kTableOffset, kTableSize) != LoadU32(base + kOffTableCrc)) {
    FtbMetrics::Get().checksum_failures.Add();
    return CorruptionError(path, "section table CRC mismatch");
  }

  const uint64_t num_traj = LoadU64(base + kOffNumTrajectories);
  const uint64_t num_records = LoadU64(base + kOffNumRecords);

  // Any valid file stores (num_traj + 1) u64 offsets and num_records
  // i64 timestamps in-body, so a count at or above size/8 cannot fit.
  // Rejecting such counts here is exact, and it keeps the
  // expected-length products below from wrapping uint64 on a crafted
  // header (which would let a tiny section pass the length check and
  // send the endpoint/monotonicity validation out of bounds).
  if (num_traj >= size / sizeof(uint64_t) ||
      num_records >= size / sizeof(int64_t)) {
    return CorruptionError(path,
                           "trajectory/record count exceeds file size");
  }

  // Section table: ids in canonical order, in-bounds, aligned,
  // non-overlapping in ascending file order (what the writer
  // produces), with the lengths the header's counts dictate.
  struct Entry {
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
  };
  Entry entries[kSectionCount];
  uint64_t min_offset = kTableOffset + kTableSize;
  const uint64_t expected_lengths[kSectionCount] = {
      (num_traj + 1) * sizeof(uint64_t),  // record offsets
      num_traj * sizeof(uint64_t),        // owners
      (num_traj + 1) * sizeof(uint64_t),  // label offsets
      static_cast<uint64_t>(-1),          // label pool: checked below
      num_records * sizeof(int64_t),      // timestamps
      num_records * sizeof(double),       // x
      num_records * sizeof(double),       // y
      static_cast<uint64_t>(-1),          // name: any length
  };
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const unsigned char* e = base + kTableOffset + i * kEntrySize;
    if (LoadU32(e) != i + 1) {
      return CorruptionError(path, "section id out of order");
    }
    entries[i].crc = LoadU32(e + 4);
    entries[i].offset = LoadU64(e + 8);
    entries[i].length = LoadU64(e + 16);
    if (entries[i].offset % SectionAlignment(version) != 0 ||
        entries[i].offset > size - kFooterSize ||
        entries[i].length > size - kFooterSize - entries[i].offset) {
      return CorruptionError(path, "section out of bounds");
    }
    if (entries[i].offset < min_offset) {
      return CorruptionError(path, "sections overlap or out of order");
    }
    min_offset = entries[i].offset + entries[i].length;
    if (expected_lengths[i] != static_cast<uint64_t>(-1) &&
        entries[i].length != expected_lengths[i]) {
      return CorruptionError(path, "section length mismatch");
    }
  }
  if (options.verify_checksums) {
    for (uint32_t i = 0; i < kSectionCount; ++i) {
      if (Crc32(base + entries[i].offset, entries[i].length) !=
          entries[i].crc) {
        FtbMetrics::Get().checksum_failures.Add();
        return CorruptionError(
            path, "section " + std::to_string(i + 1) + " CRC mismatch");
      }
    }
  }

  traj::FlatDatabase::Columns cols;
  cols.record_offsets = reinterpret_cast<const uint64_t*>(
      base + entries[kSecRecordOffsets - 1].offset);
  cols.owners =
      reinterpret_cast<const uint64_t*>(base + entries[kSecOwners - 1].offset);
  cols.label_offsets = reinterpret_cast<const uint64_t*>(
      base + entries[kSecLabelOffsets - 1].offset);
  cols.label_pool =
      reinterpret_cast<const char*>(base + entries[kSecLabelPool - 1].offset);
  cols.ts = reinterpret_cast<const int64_t*>(
      base + entries[kSecTimestamps - 1].offset);
  cols.xs = reinterpret_cast<const double*>(base + entries[kSecX - 1].offset);
  cols.ys = reinterpret_cast<const double*>(base + entries[kSecY - 1].offset);
  cols.num_trajectories = static_cast<size_t>(num_traj);
  cols.num_records = static_cast<size_t>(num_records);
  cols.label_pool_size =
      static_cast<size_t>(entries[kSecLabelPool - 1].length);

  // Offset tables must be monotone prefix sums that tile the columns
  // exactly; otherwise views could read out of bounds.
  if (cols.record_offsets[0] != 0 ||
      cols.record_offsets[num_traj] != num_records ||
      cols.label_offsets[0] != 0 ||
      cols.label_offsets[num_traj] != cols.label_pool_size) {
    return CorruptionError(path, "offset table endpoints mismatch");
  }
  for (uint64_t i = 0; i < num_traj; ++i) {
    if (cols.record_offsets[i] > cols.record_offsets[i + 1] ||
        cols.label_offsets[i] > cols.label_offsets[i + 1]) {
      return CorruptionError(path, "offset table not monotone");
    }
  }
  if (options.verify_checksums) {
    // Timestamp order is an engine invariant (binary search, merge
    // cursors); a file claiming it falsely must not load.
    for (uint64_t i = 0; i < num_traj; ++i) {
      for (uint64_t r = cols.record_offsets[i] + 1;
           r < cols.record_offsets[i + 1]; ++r) {
        if (cols.ts[r - 1] > cols.ts[r]) {
          return CorruptionError(
              path, "timestamps out of order in trajectory " +
                        std::to_string(i));
        }
      }
    }
  }

  std::string name(
      reinterpret_cast<const char*>(base + entries[kSecName - 1].offset),
      static_cast<size_t>(entries[kSecName - 1].length));
  traj::FlatDatabase db =
      traj::FlatDatabase::FromColumns(cols, std::move(storage),
                                      std::move(name));
  if (!db.HasUniqueLabels()) {
    return CorruptionError(path, "duplicate trajectory labels");
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  FtbMetrics& m = FtbMetrics::Get();
  (mmapped ? m.loads_mmap : m.loads_heap).Add();
  m.bytes_mapped.Add(static_cast<int64_t>(size));
  m.load_us.Record(static_cast<int64_t>(seconds * 1e6));
  if (info != nullptr) {
    info->bytes = size;
    info->mmapped = mmapped;
    info->load_seconds = seconds;
  }
  return db;
}

}  // namespace ftl::io
