#ifndef FTL_IO_GEOJSON_H_
#define FTL_IO_GEOJSON_H_

/// \file geojson.h
/// GeoJSON export for visualization.
///
/// Writes a FeatureCollection with one LineString per trajectory
/// (properties: label, owner, record count). When a LocalProjection is
/// provided, planar coordinates are inverse-projected to WGS-84 lon/lat
/// so files drop straight into geojson.io / QGIS / kepler.gl; otherwise
/// raw planar meters are emitted.

#include <optional>
#include <string>

#include "geo/projection.h"
#include "traj/database.h"
#include "util/status.h"

namespace ftl::io {

/// Serializes the database as GeoJSON.
std::string ToGeoJson(const traj::TrajectoryDatabase& db,
                      const std::optional<geo::LocalProjection>& projection =
                          std::nullopt);

/// Writes GeoJSON to `path`.
Status WriteGeoJson(const traj::TrajectoryDatabase& db,
                    const std::string& path,
                    const std::optional<geo::LocalProjection>& projection =
                        std::nullopt);

}  // namespace ftl::io

#endif  // FTL_IO_GEOJSON_H_
