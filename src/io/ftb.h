#ifndef FTL_IO_FTB_H_
#define FTL_IO_FTB_H_

/// \file ftb.h
/// FTB — the FTL Trajectory Binary columnar store.
///
/// An FTB file is the on-disk form of a traj::FlatDatabase: a small
/// little-endian header, a section table, and eight aligned payload
/// sections (per-trajectory record offsets, owners, label offsets,
/// interned label pool, and the three record columns timestamp/x/y),
/// each integrity-checked by a CRC32 recorded in the section table.
/// Version 2 files start every section on a 32-byte boundary so
/// 256-bit vector loads on mmap'd columns are aligned; version 1 files
/// guaranteed only 8 bytes, and the reader accepts both.
///
/// Because the payload sections ARE the FlatDatabase
/// columns, loading is zero-copy: the reader mmaps the file, validates
/// header + checksums, and hands out column pointers straight into the
/// mapping. A heap-read fallback covers platforms without mmap (and
/// tests that want to exercise it).
///
/// Layout details (offsets, endianness, checksum policy, truncation
/// detection) are documented in DESIGN.md §9.

#include <cstddef>
#include <cstdint>
#include <string>

#include "traj/database.h"
#include "traj/flat_database.h"
#include "util/status.h"

namespace ftl::io {

/// Magic bytes at offset 0 of every FTB file (PNG-style: a high bit to
/// trip 7-bit transports, CR-LF and LF to catch newline translation,
/// 0x1a to stop accidental `type` dumps on Windows).
inline constexpr unsigned char kFtbMagic[8] = {0x89, 'F',  'T',  'B',
                                               '\r', '\n', 0x1a, '\n'};

/// Current format version, written by WriteFtb. Version 2 pads every
/// section start to 32 bytes (for aligned vector loads on mmap'd
/// columns); the payload encoding is otherwise identical to version 1.
inline constexpr uint32_t kFtbVersion = 2;

/// Oldest version ReadFtb still accepts. Version-1 files only
/// guarantee 8-byte section alignment.
inline constexpr uint32_t kFtbMinReadVersion = 1;

/// Options for ReadFtb.
struct FtbReadOptions {
  /// Verify the per-section CRC32s (and the timestamp-order invariant)
  /// at load time. Leave on outside of benchmarks; the whole-file scan
  /// is still far cheaper than a CSV parse.
  bool verify_checksums = true;

  /// Map the file instead of reading it onto the heap when the
  /// platform supports it. The mapping is read-only and private.
  bool prefer_mmap = true;
};

/// Load telemetry reported by ReadFtb.
struct FtbLoadInfo {
  size_t bytes = 0;            ///< file size (bytes mapped or read)
  bool mmapped = false;        ///< true when backed by an mmap
  double load_seconds = 0.0;   ///< wall time of the load + validation
};

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `len` bytes.
/// Exposed for tests and for tools that patch FTB files.
uint32_t Crc32(const void* data, size_t len);

/// True when `bytes` starts with the FTB magic.
bool LooksLikeFtb(const void* bytes, size_t len);

/// True when the file at `path` starts with the FTB magic. IO errors
/// report false (callers fall through to the text loaders, which
/// produce their own diagnostics).
bool SniffFtb(const std::string& path);

/// Serializes `db` to `path` in FTB format. Goes through the
/// torn-write-aware WriteTextFile helper (failpoint site
/// "io.write_ftb"), so fault-injection tests can tear the output.
Status WriteFtb(const traj::FlatDatabase& db, const std::string& path);

/// Convenience overload: converts to columnar form, then writes.
Status WriteFtb(const traj::TrajectoryDatabase& db, const std::string& path);

/// Loads an FTB file into a FlatDatabase (failpoint site
/// "io.read_ftb"). Validation always covers the header, footer, file
/// length, section bounds, offset-table monotonicity, and label
/// uniqueness; `options.verify_checksums` adds the per-section CRCs
/// and the per-trajectory timestamp order. On success the database's
/// views point into the mapping (or the heap buffer) with no
/// per-record work done. `info`, when non-null, receives load
/// telemetry; the same numbers are also published as ftl_io_ftb_*
/// metrics.
Result<traj::FlatDatabase> ReadFtb(const std::string& path,
                                   const FtbReadOptions& options = {},
                                   FtbLoadInfo* info = nullptr);

}  // namespace ftl::io

#endif  // FTL_IO_FTB_H_
