#include "io/geojson.h"

#include <fstream>

#include "util/string_util.h"

namespace ftl::io {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToGeoJson(
    const traj::TrajectoryDatabase& db,
    const std::optional<geo::LocalProjection>& projection) {
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first_feature = true;
  for (const auto& t : db) {
    if (!first_feature) out += ',';
    first_feature = false;
    out += "{\"type\":\"Feature\",\"properties\":{";
    out += "\"label\":\"" + EscapeJson(t.label()) + "\",";
    out += "\"owner\":" +
           (t.owner() == traj::kUnknownOwner
                ? std::string("null")
                : std::to_string(t.owner())) +
           ",";
    out += "\"records\":" + std::to_string(t.size());
    out += "},\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
    bool first_pt = true;
    for (const auto& r : t.records()) {
      if (!first_pt) out += ',';
      first_pt = false;
      double x = r.location.x, y = r.location.y;
      if (projection.has_value()) {
        geo::LatLon ll = projection->Backward(r.location);
        x = ll.lon_deg;
        y = ll.lat_deg;
      }
      out += '[' + FormatDouble(x, 6) + ',' + FormatDouble(y, 6) + ']';
    }
    out += "]}}";
  }
  out += "]}";
  return out;
}

Status WriteGeoJson(const traj::TrajectoryDatabase& db,
                    const std::string& path,
                    const std::optional<geo::LocalProjection>& projection) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f << ToGeoJson(db, projection);
  f.close();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace ftl::io
