#ifndef FTL_IO_REPORT_JSON_H_
#define FTL_IO_REPORT_JSON_H_

/// \file report_json.h
/// JSON serialization for linking results, so FTL output can feed
/// downstream tooling (dashboards, case-management systems) without
/// parsing human-oriented tables.
///
/// A tiny purpose-built writer (no external JSON dependency); numbers
/// are emitted with enough precision to round-trip scores.

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/identity_graph.h"
#include "eval/metrics.h"
#include "traj/database.h"

namespace ftl::io {

/// Minimal JSON writer: objects/arrays/values with correct escaping.
/// Usage:
///   JsonWriter w;
///   w.BeginObject(); w.Key("x"); w.Value(1.5); w.EndObject();
///   std::string out = w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Writes an object key (must be inside an object).
  void Key(const std::string& k);
  void Value(const std::string& v);
  void Value(const char* v);
  void Value(double v);
  void Value(int64_t v);
  void Value(uint64_t v);
  void Value(bool v);
  void Null();

  /// The serialized document.
  const std::string& str() const { return out_; }

 private:
  void Separate();
  static std::string Escape(const std::string& s);

  std::string out_;
  std::vector<bool> needs_comma_;  // per open container
  bool after_key_ = false;
};

/// Serializes one query's result: query label, candidate array with
/// label/score/p-values, selectiveness, plus the truncation marker and
/// evaluated-candidate count (so deadline-expired partial results are
/// self-describing — the serve API returns them with HTTP 408).
std::string QueryResultToJson(const std::string& query_label,
                              const core::QueryResult& result);

/// Serializes workload metrics (perceptiveness, selectiveness, ranks).
std::string MetricsToJson(const eval::WorkloadMetrics& metrics);

/// Serializes resolved identity clusters with trajectory labels; `dbs`
/// must match the sources the graph was built over.
std::string ClustersToJson(
    const std::vector<core::IdentityCluster>& clusters,
    const std::vector<const traj::TrajectoryDatabase*>& dbs);

}  // namespace ftl::io

#endif  // FTL_IO_REPORT_JSON_H_
