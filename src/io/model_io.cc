#include "io/model_io.h"

#include <sstream>

#include "io/file_util.h"
#include "util/string_util.h"

namespace ftl::io {

namespace {
constexpr char kMagic[] = "ftl-compat-model v1";
}  // namespace

std::string ModelToString(const core::CompatibilityModel& model) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "unit_seconds " << model.time_unit_seconds() << '\n';
  out << "buckets " << model.probs().size() << '\n';
  const auto& support = model.support();
  for (size_t i = 0; i < model.probs().size(); ++i) {
    int64_t s = i < support.size() ? support[i] : 0;
    out << FormatDouble(model.probs()[i], 10) << ' ' << s << '\n';
  }
  return out.str();
}

Result<core::CompatibilityModel> ModelFromString(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kMagic) {
    return Status::IOError("bad model magic line");
  }
  int64_t unit = 0, buckets = 0;
  if (!std::getline(in, line)) return Status::IOError("missing unit line");
  {
    auto fields = Split(std::string(Trim(line)), ' ');
    if (fields.size() != 2 || fields[0] != "unit_seconds" ||
        !ParseInt64(fields[1], &unit)) {
      return Status::IOError("bad unit line: '" + line + "'");
    }
  }
  if (!std::getline(in, line)) return Status::IOError("missing buckets line");
  {
    auto fields = Split(std::string(Trim(line)), ' ');
    if (fields.size() != 2 || fields[0] != "buckets" ||
        !ParseInt64(fields[1], &buckets) || buckets < 0) {
      return Status::IOError("bad buckets line: '" + line + "'");
    }
  }
  std::vector<double> probs;
  std::vector<int64_t> support;
  probs.reserve(static_cast<size_t>(buckets));
  for (int64_t i = 0; i < buckets; ++i) {
    if (!std::getline(in, line)) {
      return Status::IOError("truncated model: expected " +
                             std::to_string(buckets) + " buckets, got " +
                             std::to_string(i));
    }
    auto fields = Split(std::string(Trim(line)), ' ');
    double p = 0;
    int64_t s = 0;
    if (fields.size() != 2 || !ParseDouble(fields[0], &p) ||
        !ParseInt64(fields[1], &s)) {
      return Status::IOError("bad bucket line: '" + line + "'");
    }
    probs.push_back(p);
    support.push_back(s);
  }
  core::CompatibilityModel model(unit, std::move(probs));
  model.set_support(std::move(support));
  Status st = model.Validate();
  if (!st.ok()) return st;
  return model;
}

Status WriteModel(const core::CompatibilityModel& model,
                  const std::string& path) {
  return WriteTextFile(path, ModelToString(model), "io.write_model");
}

Result<core::CompatibilityModel> ReadModel(const std::string& path) {
  auto content = ReadTextFile(path, "io.read_model");
  if (!content.ok()) return content.status();
  return ModelFromString(content.value());
}

}  // namespace ftl::io
