#include "io/json_parse.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace ftl::io {

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

Result<int64_t> JsonValue::AsInt64() const {
  if (kind_ != Kind::kNumber) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  if (!std::isfinite(num_) || num_ != std::floor(num_) ||
      num_ < -9.007199254740992e15 || num_ > 9.007199254740992e15) {
    return Status::InvalidArgument("JSON number is not an exact integer");
  }
  return static_cast<int64_t>(num_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view; single forward pass,
/// no backtracking. Every failure reports the byte offset so API
/// clients get actionable 400 messages.
class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue v;
    FTL_RETURN_NOT_OK(ParseValue(0, &v));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(size_t depth, JsonValue* out) {
    if (depth > options_.max_depth) {
      return Fail("nesting deeper than " + std::to_string(options_.max_depth));
    }
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        FTL_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (Consume("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (Consume("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (Consume("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(size_t depth, JsonValue* out) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *out = JsonValue::Object(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      FTL_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Fail("expected ':' after key");
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      FTL_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        *out = JsonValue::Object(std::move(members));
        return Status::OK();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(size_t depth, JsonValue* out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      *out = JsonValue::Array(std::move(items));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      FTL_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        *out = JsonValue::Array(std::move(items));
        return Status::OK();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (AtEnd()) return Fail("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          FTL_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a low surrogate to follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            FTL_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      return Fail("invalid value");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    // The grammar above admits exactly what strtod accepts, so this
    // cannot fail; the null-terminated copy keeps strtod in bounds.
    std::string token(text_.substr(start, pos_ - start));
    *out = JsonValue::Number(std::strtod(token.c_str(), nullptr));
    return Status::OK();
  }

  std::string_view text_;
  JsonParseOptions options_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseOptions& options) {
  return Parser(text, options).Parse();
}

}  // namespace ftl::io
