#ifndef FTL_IO_CSV_H_
#define FTL_IO_CSV_H_

/// \file csv.h
/// CSV persistence for trajectory databases.
///
/// Format (header required):
///   label,owner,t,x,y
/// where `owner` is the ground-truth id (or -1 when unknown), `t` is
/// seconds, and `x`/`y` are planar meters. Rows of one trajectory need
/// not be contiguous or sorted; loading groups by label and sorts by
/// time.

#include <string>

#include "traj/database.h"
#include "util/status.h"

namespace ftl::io {

/// Writes a database to `path`. Overwrites existing files.
Status WriteCsv(const traj::TrajectoryDatabase& db, const std::string& path);

/// Reads a database from `path`.
Result<traj::TrajectoryDatabase> ReadCsv(const std::string& path,
                                         const std::string& db_name = "");

/// Serializes a database to a CSV string (used by tests and WriteCsv).
std::string ToCsvString(const traj::TrajectoryDatabase& db);

/// Parses a database from a CSV string.
Result<traj::TrajectoryDatabase> FromCsvString(const std::string& content,
                                               const std::string& db_name);

}  // namespace ftl::io

#endif  // FTL_IO_CSV_H_
