#ifndef FTL_IO_CSV_H_
#define FTL_IO_CSV_H_

/// \file csv.h
/// CSV persistence for trajectory databases.
///
/// Format (header required):
///   label,owner,t,x,y
/// where `owner` is the ground-truth id (or -1 when unknown), `t` is
/// seconds, and `x`/`y` are planar meters. Rows of one trajectory need
/// not be contiguous or sorted; loading groups by label and sorts by
/// time.
///
/// Two loading modes:
///  * strict (default): the first malformed row fails the whole load
///    with a row-level reason;
///  * lenient (CsvReadOptions::lenient): malformed rows are routed to a
///    QuarantineReport — counts per reason, sample rows, optional
///    sidecar CSV — and the clean remainder loads normally. This is
///    the ingest posture for real-world telemetry, where a fraction of
///    corrupt rows must not abort a multi-gigabyte load.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "traj/database.h"
#include "util/status.h"

namespace ftl::io {

/// Why a row or record was quarantined (or rejected, in strict mode).
enum class QuarantineReason {
  kFieldCount = 0,      ///< not exactly 5 comma-separated fields
  kUnparseable,         ///< numeric field failed to parse (incl. overflow)
  kNonFinite,           ///< NaN or infinite coordinate
  kCoordinateRange,     ///< |x| or |y| beyond max_abs_coordinate
  kTimestampRange,      ///< t negative or beyond max_timestamp
  kDuplicateTimestamp,  ///< same timestamp repeated within one label
  kTeleport,            ///< implied speed above max_speed_mps
};
inline constexpr size_t kQuarantineReasonCount = 7;

/// Short lowercase name for a reason (e.g. "non-finite").
const char* QuarantineReasonName(QuarantineReason reason);

/// CSV loading knobs. The defaults reproduce strict historical
/// behavior plus basic physical-range hardening.
struct CsvReadOptions {
  /// Quarantine malformed rows instead of failing the load.
  bool lenient = false;

  /// Lenient mode only: coordinates with |x| or |y| above this (meters)
  /// are quarantined; 10,000 km covers any planar city projection.
  /// Strict mode accepts any finite value (historical contract).
  double max_abs_coordinate = 1.0e7;

  /// Lenient mode only: timestamps outside [0, max_timestamp] seconds
  /// are quarantined. Default is 9999-12-31T23:59:59Z — far beyond
  /// plausible telemetry but well inside int64, so overflow garbage
  /// cannot masquerade as data.
  int64_t max_timestamp = 253402300799;

  /// Lenient mode only: when > 0, records whose implied speed from the
  /// previous kept record of the same trajectory exceeds this (m/s)
  /// are quarantined as teleports. 0 disables the check.
  double max_speed_mps = 0.0;

  /// Lenient mode only: when true, records repeating a timestamp
  /// already kept for the same label are quarantined (first one wins).
  bool drop_duplicate_timestamps = true;

  /// Rows kept verbatim in QuarantineReport::sample_rows.
  size_t max_sample_rows = 5;

  /// Lenient mode only: when non-empty, every quarantined row is
  /// appended to this sidecar CSV as `reason,label,owner,t,x,y` (raw
  /// row text for parse-level rejects).
  std::string sidecar_path;
};

/// What lenient loading set aside, and why.
struct QuarantineReport {
  size_t rows_total = 0;        ///< data rows seen (excluding header)
  size_t rows_quarantined = 0;  ///< rows/records set aside
  std::array<size_t, kQuarantineReasonCount> by_reason{};

  /// Up to CsvReadOptions::max_sample_rows examples,
  /// "line <n>: <raw row> [<reason>]".
  std::vector<std::string> sample_rows;

  size_t count(QuarantineReason reason) const {
    return by_reason[static_cast<size_t>(reason)];
  }
  bool empty() const { return rows_quarantined == 0; }

  /// One-line summary, e.g.
  /// "quarantined 3/30 rows (unparseable=2 non-finite=1)".
  std::string ToString() const;
};

/// Writes a database to `path`. Overwrites existing files.
Status WriteCsv(const traj::TrajectoryDatabase& db, const std::string& path);

/// Reads a database from `path` (strict mode).
Result<traj::TrajectoryDatabase> ReadCsv(const std::string& path,
                                         const std::string& db_name = "");

/// Reads a database from `path` with explicit options. `report` (may
/// be null) receives the quarantine summary; in strict mode it is
/// cleared and left empty.
Result<traj::TrajectoryDatabase> ReadCsv(const std::string& path,
                                         const std::string& db_name,
                                         const CsvReadOptions& options,
                                         QuarantineReport* report);

/// Serializes a database to a CSV string (used by tests and WriteCsv).
std::string ToCsvString(const traj::TrajectoryDatabase& db);

/// Parses a database from a CSV string (strict mode).
Result<traj::TrajectoryDatabase> FromCsvString(const std::string& content,
                                               const std::string& db_name);

/// Parses a database from a CSV string with explicit options; see
/// ReadCsv for the `report` contract.
Result<traj::TrajectoryDatabase> FromCsvString(const std::string& content,
                                               const std::string& db_name,
                                               const CsvReadOptions& options,
                                               QuarantineReport* report);

}  // namespace ftl::io

#endif  // FTL_IO_CSV_H_
