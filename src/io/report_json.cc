#include "io/report_json.h"

#include <cinttypes>
#include <cstdio>

namespace ftl::io {

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
}

void JsonWriter::Key(const std::string& k) {
  Separate();
  out_ += '"';
  out_ += Escape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::Value(const std::string& v) {
  Separate();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
}

void JsonWriter::Value(const char* v) { Value(std::string(v)); }

void JsonWriter::Value(double v) {
  Separate();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  out_ += buf;
}

void JsonWriter::Value(int64_t v) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::Value(uint64_t v) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

std::string QueryResultToJson(const std::string& query_label,
                              const core::QueryResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("query");
  w.Value(query_label);
  w.Key("selectiveness");
  w.Value(result.selectiveness);
  w.Key("truncated");
  w.Value(result.truncated);
  w.Key("evaluated");
  w.Value(static_cast<uint64_t>(result.evaluated));
  w.Key("candidates");
  w.BeginArray();
  for (const auto& c : result.candidates) {
    w.BeginObject();
    w.Key("label");
    w.Value(c.label);
    w.Key("index");
    w.Value(static_cast<uint64_t>(c.index));
    w.Key("score");
    w.Value(c.score);
    w.Key("p1");
    w.Value(c.p1);
    w.Key("p2");
    w.Value(c.p2);
    w.Key("incompatible");
    w.Value(static_cast<int64_t>(c.k_observed));
    w.Key("segments");
    w.Value(static_cast<uint64_t>(c.n_segments));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string MetricsToJson(const eval::WorkloadMetrics& metrics) {
  JsonWriter w;
  w.BeginObject();
  w.Key("num_queries");
  w.Value(static_cast<uint64_t>(metrics.num_queries));
  w.Key("perceptiveness");
  w.Value(metrics.perceptiveness);
  w.Key("selectiveness");
  w.Value(metrics.selectiveness);
  w.Key("mean_candidates");
  w.Value(metrics.mean_candidates);
  w.Key("true_match_ranks");
  w.BeginArray();
  for (int64_t r : metrics.true_match_ranks) w.Value(r);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string ClustersToJson(
    const std::vector<core::IdentityCluster>& clusters,
    const std::vector<const traj::TrajectoryDatabase*>& dbs) {
  JsonWriter w;
  w.BeginObject();
  w.Key("identities");
  w.BeginArray();
  for (const auto& cluster : clusters) {
    w.BeginObject();
    w.Key("members");
    w.BeginArray();
    for (const auto& m : cluster.members) {
      w.BeginObject();
      w.Key("source");
      w.Value(static_cast<uint64_t>(m.source));
      w.Key("index");
      w.Value(static_cast<uint64_t>(m.index));
      if (m.source < dbs.size() && dbs[m.source] != nullptr &&
          m.index < dbs[m.source]->size()) {
        w.Key("label");
        w.Value((*dbs[m.source])[m.index].label());
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace ftl::io
