#ifndef FTL_IO_MODEL_IO_H_
#define FTL_IO_MODEL_IO_H_

/// \file model_io.h
/// Persistence for trained compatibility models, so expensive training
/// runs can be reused across sessions / shipped with deployments.
///
/// Format (plain text, line oriented):
///   ftl-compat-model v1
///   unit_seconds <int>
///   buckets <n>
///   <prob_0> <support_0>
///   ...

#include <string>

#include "core/compatibility_model.h"
#include "util/status.h"

namespace ftl::io {

/// Serializes a model to its text format.
std::string ModelToString(const core::CompatibilityModel& model);

/// Parses a model from the text format.
Result<core::CompatibilityModel> ModelFromString(const std::string& text);

/// Writes a model to `path`.
Status WriteModel(const core::CompatibilityModel& model,
                  const std::string& path);

/// Reads a model from `path`.
Result<core::CompatibilityModel> ReadModel(const std::string& path);

}  // namespace ftl::io

#endif  // FTL_IO_MODEL_IO_H_
