#ifndef FTL_IO_FILE_UTIL_H_
#define FTL_IO_FILE_UTIL_H_

/// \file file_util.h
/// Whole-file read/write helpers shared by the CSV and model codecs.
///
/// Centralizing the byte-level IO gives every persistence path the
/// same failure semantics: stream errors are surfaced as IOError, and
/// each call site declares a failpoint so fault-injection tests can
/// make it fail, stall, or tear its output (see util/failpoint.h).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ftl::io {

/// Reads all of `path`. `failpoint_site` is evaluated before the read.
Result<std::string> ReadTextFile(const std::string& path,
                                 const char* failpoint_site);

/// Writes `payload` to `path`, truncating any existing file.
/// `failpoint_site` is evaluated first and may inject an error or
/// request a partial (torn) write, in which case the truncated bytes
/// are written and an IOError is returned.
Status WriteTextFile(const std::string& path, const std::string& payload,
                     const char* failpoint_site);

/// Given the full contents of a record-framed file, returns the length
/// in bytes of the longest prefix made of whole, valid records. The
/// callback never sees the path, only bytes, so one rule serves files
/// and in-memory buffers alike (WAL frames, CSV rows, ...).
using ValidPrefixFn = std::function<size_t(std::string_view)>;

/// Repairs a torn tail in place: truncates the file at `path` down to
/// its longest valid-record prefix as judged by `valid_prefix`, and
/// returns the number of bytes dropped (0 when the file was already
/// clean). This is the shared recovery primitive behind WAL replay and
/// the CSV quarantine sidecar — torn writes are *repaired*, not merely
/// detected. NotFound when the file does not exist.
Result<uint64_t> TruncateToLastValidRecord(const std::string& path,
                                           const ValidPrefixFn& valid_prefix);

/// The line-oriented valid-prefix rule: the longest prefix ending in
/// '\n'. Used by the quarantine sidecar (and any other
/// one-record-per-line format) with TruncateToLastValidRecord.
size_t LastCompleteLinePrefix(std::string_view data);

/// fsync(2)s the file at `path`. `failpoint_site` (optional) is
/// evaluated first so durability barriers are chaos-testable.
Status SyncFile(const std::string& path, const char* failpoint_site = nullptr);

/// fsync(2)s the directory at `path`, making renames and creates
/// inside it durable (the second half of the temp-file + rename
/// atomic-swap protocol, DESIGN.md §12).
Status SyncDir(const std::string& path);

}  // namespace ftl::io

#endif  // FTL_IO_FILE_UTIL_H_
