#ifndef FTL_IO_FILE_UTIL_H_
#define FTL_IO_FILE_UTIL_H_

/// \file file_util.h
/// Whole-file read/write helpers shared by the CSV and model codecs.
///
/// Centralizing the byte-level IO gives every persistence path the
/// same failure semantics: stream errors are surfaced as IOError, and
/// each call site declares a failpoint so fault-injection tests can
/// make it fail, stall, or tear its output (see util/failpoint.h).

#include <string>

#include "util/status.h"

namespace ftl::io {

/// Reads all of `path`. `failpoint_site` is evaluated before the read.
Result<std::string> ReadTextFile(const std::string& path,
                                 const char* failpoint_site);

/// Writes `payload` to `path`, truncating any existing file.
/// `failpoint_site` is evaluated first and may inject an error or
/// request a partial (torn) write, in which case the truncated bytes
/// are written and an IOError is returned.
Status WriteTextFile(const std::string& path, const std::string& payload,
                     const char* failpoint_site);

}  // namespace ftl::io

#endif  // FTL_IO_FILE_UTIL_H_
