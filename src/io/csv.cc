#include "io/csv.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/string_util.h"

namespace ftl::io {

std::string ToCsvString(const traj::TrajectoryDatabase& db) {
  std::string out = "label,owner,t,x,y\n";
  for (const auto& t : db) {
    int64_t owner = t.owner() == traj::kUnknownOwner
                        ? -1
                        : static_cast<int64_t>(t.owner());
    for (const auto& r : t.records()) {
      out += t.label();
      out += ',';
      out += std::to_string(owner);
      out += ',';
      out += std::to_string(r.t);
      out += ',';
      out += FormatDouble(r.location.x, 3);
      out += ',';
      out += FormatDouble(r.location.y, 3);
      out += '\n';
    }
  }
  return out;
}

Status WriteCsv(const traj::TrajectoryDatabase& db, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f << ToCsvString(db);
  f.close();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<traj::TrajectoryDatabase> FromCsvString(const std::string& content,
                                               const std::string& db_name) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty CSV content");
  }
  if (Trim(line) != "label,owner,t,x,y") {
    return Status::IOError("bad CSV header: '" + line + "'");
  }
  // label -> (owner, records)
  std::map<std::string, std::pair<int64_t, std::vector<traj::Record>>> groups;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    auto fields = Split(line, ',');
    if (fields.size() != 5) {
      return Status::IOError("line " + std::to_string(line_no) +
                             ": expected 5 fields, got " +
                             std::to_string(fields.size()));
    }
    int64_t owner = 0, t = 0;
    double x = 0, y = 0;
    if (!ParseInt64(fields[1], &owner) || !ParseInt64(fields[2], &t) ||
        !ParseDouble(fields[3], &x) || !ParseDouble(fields[4], &y)) {
      return Status::IOError("line " + std::to_string(line_no) +
                             ": unparseable numeric field");
    }
    auto& group = groups[fields[0]];
    group.first = owner;
    group.second.push_back(traj::Record{{x, y}, t});
  }
  traj::TrajectoryDatabase db(db_name);
  for (auto& [label, group] : groups) {
    traj::OwnerId owner = group.first < 0
                              ? traj::kUnknownOwner
                              : static_cast<traj::OwnerId>(group.first);
    Status s = db.Add(traj::Trajectory(label, owner, std::move(group.second)));
    if (!s.ok()) return s;
  }
  return db;
}

Result<traj::TrajectoryDatabase> ReadCsv(const std::string& path,
                                         const std::string& db_name) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  return FromCsvString(buf.str(), db_name.empty() ? path : db_name);
}

}  // namespace ftl::io
