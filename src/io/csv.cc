#include "io/csv.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string_view>
#include <unordered_map>

#include "io/file_util.h"
#include "obs/metrics.h"
#include "traj/record.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace ftl::io {

namespace {

/// Ingest counters, resolved once. Flushed per load from the local
/// QuarantineReport, so per-row parsing pays nothing.
struct IngestMetrics {
  obs::Counter* rows;
  obs::Counter* quarantined;
  std::array<obs::Counter*, kQuarantineReasonCount> by_reason;
};

const IngestMetrics& Metrics() {
  static const IngestMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    IngestMetrics im;
    im.rows = &r.GetCounter("ftl_ingest_rows_total");
    im.quarantined = &r.GetCounter("ftl_ingest_quarantined_total");
    for (size_t i = 0; i < kQuarantineReasonCount; ++i) {
      im.by_reason[i] = &r.GetCounter(
          std::string("ftl_ingest_quarantined_total{reason=\"") +
          QuarantineReasonName(static_cast<QuarantineReason>(i)) + "\"}");
    }
    return im;
  }();
  return m;
}

/// One parsed data row plus its provenance, kept per label group so the
/// post-group passes (duplicate/teleport quarantine) can report the
/// offending source line.
struct ParsedRow {
  traj::Record record;
  size_t line_no = 0;
};

/// Accumulates quarantine state during one lenient load.
class QuarantineSink {
 public:
  QuarantineSink(const CsvReadOptions& options, QuarantineReport* report)
      : options_(options), report_(report) {}

  void Add(size_t line_no, std::string_view row_text,
           QuarantineReason reason) {
    ++report_->rows_quarantined;
    ++report_->by_reason[static_cast<size_t>(reason)];
    if (report_->sample_rows.size() < options_.max_sample_rows) {
      std::string sample = "line " + std::to_string(line_no) + ": ";
      sample += row_text;
      sample += " [";
      sample += QuarantineReasonName(reason);
      sample += "]";
      report_->sample_rows.push_back(std::move(sample));
    }
    if (!options_.sidecar_path.empty()) {
      sidecar_ += QuarantineReasonName(reason);
      sidecar_ += ',';
      sidecar_ += row_text;
      sidecar_ += '\n';
    }
  }

  /// Flushes the sidecar CSV, if one was requested. A torn write
  /// (crash / fault injection mid-flush) is repaired in place by
  /// truncating to the last complete row — the same
  /// TruncateToLastValidRecord primitive WAL recovery uses — so the
  /// sidecar on disk never ends in a partial record even when this
  /// returns the original IOError.
  Status Flush() {
    if (options_.sidecar_path.empty() || sidecar_.empty()) {
      return Status::OK();
    }
    Status st = WriteTextFile(options_.sidecar_path,
                              "reason,label,owner,t,x,y\n" + sidecar_,
                              "io.write_csv");
    if (!st.ok()) {
      (void)TruncateToLastValidRecord(options_.sidecar_path,
                                      LastCompleteLinePrefix);
    }
    return st;
  }

 private:
  const CsvReadOptions& options_;
  QuarantineReport* report_;
  std::string sidecar_;
};

/// Reconstructs the canonical row text of a parsed record (the raw line
/// is no longer available once rows are grouped).
std::string RowText(std::string_view label, int64_t owner,
                    const traj::Record& r) {
  return std::string(label) + ',' + std::to_string(owner) + ',' +
         std::to_string(r.t) + ',' + FormatDouble(r.location.x, 3) + ',' +
         FormatDouble(r.location.y, 3);
}

/// Maximum fields a row can carry (label,owner,t,x,y).
inline constexpr size_t kCsvFieldCount = 5;

/// Splits `line` on commas into at most `kCsvFieldCount` views (no
/// allocation, unlike Split); returns the *total* field count so callers
/// can report over-long rows precisely.
size_t SplitFields(std::string_view line,
                   std::string_view out[kCsvFieldCount]) {
  size_t count = 0, start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    std::string_view field = comma == std::string_view::npos
                                 ? line.substr(start)
                                 : line.substr(start, comma - start);
    if (count < kCsvFieldCount) out[count] = field;
    ++count;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return count;
}

/// Yields `content` line by line (getline semantics: '\n' terminates a
/// line; a final unterminated line is still produced). `pos` is the
/// cursor; returns false at end of input.
bool NextLine(std::string_view content, size_t* pos, std::string_view* line) {
  if (*pos >= content.size()) return false;
  size_t nl = content.find('\n', *pos);
  if (nl == std::string_view::npos) {
    *line = content.substr(*pos);
    *pos = content.size();
  } else {
    *line = content.substr(*pos, nl - *pos);
    *pos = nl + 1;
  }
  return true;
}

/// Classifies one data row. On success fills `out`; on failure returns
/// the reason and a human-readable detail for strict-mode errors.
bool ClassifyRow(const std::string_view fields[kCsvFieldCount],
                 size_t num_fields, const CsvReadOptions& options,
                 int64_t* owner, traj::Record* out, QuarantineReason* reason,
                 std::string* detail) {
  if (num_fields != kCsvFieldCount) {
    *reason = QuarantineReason::kFieldCount;
    *detail = "expected 5 fields, got " + std::to_string(num_fields);
    return false;
  }
  int64_t t = 0;
  double x = 0, y = 0;
  // ParseInt64/ParseDouble use std::from_chars: locale-independent (a
  // de_DE locale cannot turn "1.5" into 1500) and overflow-checked
  // (huge timestamps fail the parse instead of wrapping).
  if (!ParseInt64(fields[1], owner) || !ParseInt64(fields[2], &t) ||
      !ParseDouble(fields[3], &x) || !ParseDouble(fields[4], &y)) {
    *reason = QuarantineReason::kUnparseable;
    *detail = "unparseable numeric field";
    return false;
  }
  if (!std::isfinite(x) || !std::isfinite(y)) {
    *reason = QuarantineReason::kNonFinite;
    *detail = "non-finite coordinate";
    return false;
  }
  // Physical-range plausibility is lenient-mode ingest policy; strict
  // mode keeps the historical contract of accepting any finite
  // parseable values (round-trips may carry negative epochs or large
  // synthetic coordinates).
  if (options.lenient) {
    if (std::abs(x) > options.max_abs_coordinate ||
        std::abs(y) > options.max_abs_coordinate) {
      *reason = QuarantineReason::kCoordinateRange;
      *detail = "coordinate beyond +/-" +
                FormatDouble(options.max_abs_coordinate, 0) + " m";
      return false;
    }
    if (t < 0 || t > options.max_timestamp) {
      *reason = QuarantineReason::kTimestampRange;
      *detail = "timestamp outside [0, " +
                std::to_string(options.max_timestamp) + "]";
      return false;
    }
  }
  out->location = {x, y};
  out->t = t;
  return true;
}

}  // namespace

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kFieldCount:
      return "field-count";
    case QuarantineReason::kUnparseable:
      return "unparseable";
    case QuarantineReason::kNonFinite:
      return "non-finite";
    case QuarantineReason::kCoordinateRange:
      return "coordinate-range";
    case QuarantineReason::kTimestampRange:
      return "timestamp-range";
    case QuarantineReason::kDuplicateTimestamp:
      return "duplicate-timestamp";
    case QuarantineReason::kTeleport:
      return "teleport";
  }
  return "unknown";
}

std::string QuarantineReport::ToString() const {
  std::string out = "quarantined " + std::to_string(rows_quarantined) + "/" +
                    std::to_string(rows_total) + " rows";
  if (rows_quarantined == 0) return out;
  out += " (";
  bool first = true;
  for (size_t i = 0; i < kQuarantineReasonCount; ++i) {
    if (by_reason[i] == 0) continue;
    if (!first) out += ' ';
    first = false;
    out += QuarantineReasonName(static_cast<QuarantineReason>(i));
    out += '=';
    out += std::to_string(by_reason[i]);
  }
  out += ")";
  return out;
}

std::string ToCsvString(const traj::TrajectoryDatabase& db) {
  std::string out = "label,owner,t,x,y\n";
  // Upper-bound estimate (label + owner/t digits + 2×"%.3f" + commas)
  // so multi-megabyte exports don't reallocate geometrically.
  size_t estimate = out.size();
  for (const auto& t : db) {
    estimate += t.size() * (t.label().size() + 64);
  }
  out.reserve(estimate);
  for (const auto& t : db) {
    int64_t owner = t.owner() == traj::kUnknownOwner
                        ? -1
                        : static_cast<int64_t>(t.owner());
    for (const auto& r : t.records()) {
      out += RowText(t.label(), owner, r);
      out += '\n';
    }
  }
  return out;
}

Status WriteCsv(const traj::TrajectoryDatabase& db, const std::string& path) {
  return WriteTextFile(path, ToCsvString(db), "io.write_csv");
}

Result<traj::TrajectoryDatabase> FromCsvString(const std::string& content,
                                               const std::string& db_name) {
  return FromCsvString(content, db_name, CsvReadOptions{}, nullptr);
}

Result<traj::TrajectoryDatabase> FromCsvString(const std::string& content,
                                               const std::string& db_name,
                                               const CsvReadOptions& options,
                                               QuarantineReport* report) {
  QuarantineReport local_report;
  QuarantineReport* rep = report != nullptr ? report : &local_report;
  *rep = QuarantineReport{};
  QuarantineSink sink(options, rep);

  std::string_view text(content);
  std::string_view line;
  size_t pos = 0;
  if (!NextLine(text, &pos, &line)) {
    return Status::IOError("empty CSV content");
  }
  if (Trim(line) != "label,owner,t,x,y") {
    return Status::IOError("bad CSV header: '" + std::string(line) + "'");
  }
  const size_t body_pos = pos;

  // First pass: count rows per label so each group's vector is reserved
  // once instead of growing geometrically. Labels are views into
  // `content`, which outlives everything here, so no strings are built
  // on the per-row path at all.
  std::unordered_map<std::string_view, size_t> label_counts;
  while (NextLine(text, &pos, &line)) {
    if (Trim(line).empty()) continue;
    size_t comma = line.find(',');
    ++label_counts[comma == std::string_view::npos ? line
                                                   : line.substr(0, comma)];
  }

  /// One label's rows plus the last-seen owner (matching the historical
  /// "last row wins" owner semantics).
  struct Group {
    int64_t owner = 0;
    std::vector<ParsedRow> rows;
  };
  std::unordered_map<std::string_view, Group> groups;
  groups.reserve(label_counts.size());

  pos = body_pos;
  size_t line_no = 1;
  while (NextLine(text, &pos, &line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    ++rep->rows_total;
    std::string_view fields[kCsvFieldCount];
    size_t num_fields = SplitFields(line, fields);
    int64_t owner = 0;
    traj::Record record;
    QuarantineReason reason;
    std::string detail;
    if (!ClassifyRow(fields, num_fields, options, &owner, &record, &reason,
                     &detail)) {
      if (!options.lenient) {
        return Status::IOError("line " + std::to_string(line_no) + ": " +
                               detail);
      }
      sink.Add(line_no, line, reason);
      continue;
    }
    auto& group = groups[fields[0]];
    if (group.rows.empty()) group.rows.reserve(label_counts[fields[0]]);
    group.owner = owner;
    group.rows.push_back(ParsedRow{record, line_no});
  }

  // The database is built in sorted-label order (the std::map ordering
  // this loop historically had), keeping trajectory indices — and thus
  // downstream query results — independent of hash-map iteration order.
  std::vector<std::string_view> labels;
  labels.reserve(groups.size());
  for (const auto& [label, group] : groups) labels.push_back(label);
  std::sort(labels.begin(), labels.end());

  traj::TrajectoryDatabase db(db_name);
  for (std::string_view label : labels) {
    Group& group = groups.find(label)->second;
    auto& rows = group.rows;
    if (options.lenient) {
      // Record-level quarantine needs time order; stable sort keeps
      // file order among equal timestamps so "first row wins" holds.
      std::stable_sort(rows.begin(), rows.end(),
                       [](const ParsedRow& a, const ParsedRow& b) {
                         return a.record.t < b.record.t;
                       });
      std::vector<ParsedRow> kept;
      kept.reserve(rows.size());
      for (const ParsedRow& row : rows) {
        if (options.drop_duplicate_timestamps && !kept.empty() &&
            kept.back().record.t == row.record.t) {
          sink.Add(row.line_no, RowText(label, group.owner, row.record),
                   QuarantineReason::kDuplicateTimestamp);
          continue;
        }
        if (options.max_speed_mps > 0.0 && !kept.empty() &&
            !traj::IsCompatible(kept.back().record, row.record,
                                options.max_speed_mps)) {
          sink.Add(row.line_no, RowText(label, group.owner, row.record),
                   QuarantineReason::kTeleport);
          continue;
        }
        kept.push_back(row);
      }
      rows = std::move(kept);
      if (rows.empty()) continue;  // whole trajectory quarantined away
    }
    std::vector<traj::Record> records;
    records.reserve(rows.size());
    for (const ParsedRow& row : rows) records.push_back(row.record);
    traj::OwnerId owner = group.owner < 0
                              ? traj::kUnknownOwner
                              : static_cast<traj::OwnerId>(group.owner);
    Status s = db.Add(
        traj::Trajectory(std::string(label), owner, std::move(records)));
    if (!s.ok()) return s;
  }
  FTL_RETURN_NOT_OK(sink.Flush());
  const IngestMetrics& im = Metrics();
  im.rows->Add(static_cast<int64_t>(rep->rows_total));
  if (rep->rows_quarantined > 0) {
    im.quarantined->Add(static_cast<int64_t>(rep->rows_quarantined));
    for (size_t i = 0; i < kQuarantineReasonCount; ++i) {
      if (rep->by_reason[i] > 0) {
        im.by_reason[i]->Add(static_cast<int64_t>(rep->by_reason[i]));
      }
    }
  }
  return db;
}

Result<traj::TrajectoryDatabase> ReadCsv(const std::string& path,
                                         const std::string& db_name) {
  return ReadCsv(path, db_name, CsvReadOptions{}, nullptr);
}

Result<traj::TrajectoryDatabase> ReadCsv(const std::string& path,
                                         const std::string& db_name,
                                         const CsvReadOptions& options,
                                         QuarantineReport* report) {
  auto content = ReadTextFile(path, "io.read_csv");
  if (!content.ok()) return content.status();
  return FromCsvString(content.value(),
                       db_name.empty() ? path : db_name, options, report);
}

}  // namespace ftl::io
