#ifndef FTL_EVAL_WORKLOAD_H_
#define FTL_EVAL_WORKLOAD_H_

/// \file workload.h
/// Query-workload construction shared by the experiment harnesses:
/// "randomly select N trajectories as queries from P and search for
/// matching candidates from Q" (paper Section VII-B).

#include <cstddef>
#include <vector>

#include "traj/database.h"
#include "util/rng.h"

namespace ftl::eval {

/// Workload selection knobs.
struct WorkloadOptions {
  size_t num_queries = 200;

  /// Queries must have at least this many records (a 1-point trajectory
  /// is pure noise — the paper's own footnote 5 excuses exactly that
  /// case).
  size_t min_query_records = 2;

  /// When true, only pick queries whose owner actually appears in Q
  /// (the paper's problem statement assumes id(Q) ≡ id(P) exists).
  bool require_match_in_q = true;

  uint64_t seed = 99;
};

/// A selected workload: query copies plus their ground-truth owners.
struct Workload {
  std::vector<traj::Trajectory> queries;
  std::vector<traj::OwnerId> owners;
};

/// Samples a workload from P (validating against Q per the options).
Workload MakeWorkload(const traj::TrajectoryDatabase& p,
                      const traj::TrajectoryDatabase& q,
                      const WorkloadOptions& options);

}  // namespace ftl::eval

#endif  // FTL_EVAL_WORKLOAD_H_
