#ifndef FTL_EVAL_CALIBRATION_H_
#define FTL_EVAL_CALIBRATION_H_

/// \file calibration.h
/// Automatic threshold calibration.
///
/// The paper leaves α1/α2/φr to the user: "a user may start with a small
/// value of φr and increase it slowly. An appropriate value ... returns
/// a few candidate matching sets for a query" (Section IV-E). This
/// module automates exactly that loop: given a calibration workload, it
/// sweeps the strictness knob and returns the loosest setting whose mean
/// candidate-set size stays within the analyst's budget.

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "eval/sweep.h"
#include "eval/workload.h"
#include "traj/database.h"
#include "util/status.h"

namespace ftl::eval {

/// What the analyst can afford to investigate.
struct CalibrationTarget {
  /// Mean candidates per query the brute-force follow-up can absorb.
  double max_mean_candidates = 10.0;
};

/// A calibrated operating point.
struct CalibrationResult {
  double phi_r = 0.0;              ///< Naive-Bayes prior (NB calibration)
  double alpha1 = 0.0;             ///< filtering levels (alpha calibration)
  double alpha2 = 0.0;
  double mean_candidates = 0.0;    ///< achieved at that setting
  double perceptiveness = 0.0;     ///< on the calibration workload
  double selectiveness = 0.0;
  /// True when the returned setting actually meets the budget. False
  /// means even the strictest grid point exceeded
  /// `max_mean_candidates`; the strictest point is still returned so
  /// callers have a usable fallback, but they must not treat it as
  /// within budget.
  bool feasible = false;
};

/// Sweeps φr over `grid` (ascending looseness) on precomputed pair
/// scores and returns the largest φr meeting the target; if none meets
/// it, the strictest grid point is returned with `feasible == false`.
CalibrationResult CalibratePhi(const std::vector<QueryScores>& scores,
                               const std::vector<traj::OwnerId>& owners,
                               const traj::TrajectoryDatabase& db,
                               const CalibrationTarget& target,
                               const std::vector<double>& grid = {
                                   1e-6, 1e-5, 1e-4, 1e-3, 0.005, 0.02,
                                   0.08, 0.2, 0.4});

/// Sweeps (α1, α2) pairs (ascending looseness: α1 shrinking, α2
/// growing) analogously.
CalibrationResult CalibrateAlpha(
    const std::vector<QueryScores>& scores,
    const std::vector<traj::OwnerId>& owners,
    const traj::TrajectoryDatabase& db, const CalibrationTarget& target,
    const std::vector<std::pair<double, double>>& grid = {
        {0.2, 0.001},
        {0.1, 0.005},
        {0.05, 0.01},
        {0.02, 0.05},
        {0.01, 0.1},
        {0.005, 0.2},
        {0.001, 0.4}});

/// End-to-end convenience: trains nothing (engine must be trained),
/// builds a workload from (p, q), computes pair scores, and calibrates
/// the requested matcher. Returns FailedPrecondition when the engine is
/// untrained or the workload is empty.
Result<CalibrationResult> AutoCalibrate(const core::FtlEngine& engine,
                                        const traj::TrajectoryDatabase& p,
                                        const traj::TrajectoryDatabase& q,
                                        core::Matcher matcher,
                                        const CalibrationTarget& target,
                                        const WorkloadOptions& wo);

}  // namespace ftl::eval

#endif  // FTL_EVAL_CALIBRATION_H_
