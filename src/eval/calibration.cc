#include "eval/calibration.h"

#include "eval/metrics.h"

namespace ftl::eval {

CalibrationResult CalibratePhi(
    const std::vector<QueryScores>& scores,
    const std::vector<traj::OwnerId>& owners,
    const traj::TrajectoryDatabase& db, const CalibrationTarget& target,
    const std::vector<double>& grid) {
  CalibrationResult best;
  bool have_any = false;
  for (double phi : grid) {
    auto m = MetricsForPhi(scores, owners, db, phi);
    bool fits = m.mean_candidates <= target.max_mean_candidates;
    // The first grid point is stored unconditionally so an infeasible
    // budget still yields the strictest setting as a fallback — but
    // flagged, so callers can tell "best within budget" from "least
    // bad".
    if (!have_any || fits) {
      best.phi_r = phi;
      best.mean_candidates = m.mean_candidates;
      best.perceptiveness = m.perceptiveness;
      best.selectiveness = m.selectiveness;
      best.feasible = fits;
      have_any = true;
    }
    // Grid is ascending in looseness; once over budget, looser settings
    // only grow further.
    if (!fits) break;
  }
  return best;
}

CalibrationResult CalibrateAlpha(
    const std::vector<QueryScores>& scores,
    const std::vector<traj::OwnerId>& owners,
    const traj::TrajectoryDatabase& db, const CalibrationTarget& target,
    const std::vector<std::pair<double, double>>& grid) {
  CalibrationResult best;
  bool have_any = false;
  for (auto [a1, a2] : grid) {
    auto m = MetricsForAlpha(scores, owners, db, a1, a2);
    bool fits = m.mean_candidates <= target.max_mean_candidates;
    if (!have_any || fits) {
      best.alpha1 = a1;
      best.alpha2 = a2;
      best.mean_candidates = m.mean_candidates;
      best.perceptiveness = m.perceptiveness;
      best.selectiveness = m.selectiveness;
      best.feasible = fits;
      have_any = true;
    }
    if (!fits) break;
  }
  return best;
}

Result<CalibrationResult> AutoCalibrate(const core::FtlEngine& engine,
                                        const traj::TrajectoryDatabase& p,
                                        const traj::TrajectoryDatabase& q,
                                        core::Matcher matcher,
                                        const CalibrationTarget& target,
                                        const WorkloadOptions& wo) {
  if (!engine.trained()) {
    return Status::FailedPrecondition("AutoCalibrate before Train");
  }
  Workload workload = MakeWorkload(p, q, wo);
  if (workload.queries.empty()) {
    return Status::FailedPrecondition(
        "calibration workload is empty (no eligible queries)");
  }
  auto scores = ComputePairScores(engine, workload.queries, q);
  switch (matcher) {
    case core::Matcher::kNaiveBayes:
      return CalibratePhi(scores, workload.owners, q, target);
    case core::Matcher::kAlphaFilter:
      return CalibrateAlpha(scores, workload.owners, q, target);
  }
  return Status::InvalidArgument("unknown matcher");
}

}  // namespace ftl::eval
