#include "eval/metrics.h"

namespace ftl::eval {

WorkloadMetrics ComputeMetrics(const std::vector<core::QueryResult>& results,
                               const std::vector<traj::OwnerId>& owners,
                               const traj::TrajectoryDatabase& db) {
  WorkloadMetrics m;
  m.num_queries = results.size();
  if (results.empty()) return m;
  size_t hits = 0;
  double sel_sum = 0.0, cand_sum = 0.0;
  m.true_match_ranks.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    sel_sum += r.selectiveness;
    cand_sum += static_cast<double>(r.candidates.size());
    int64_t rank = -1;
    for (size_t j = 0; j < r.candidates.size(); ++j) {
      if (db[r.candidates[j].index].owner() == owners[i]) {
        rank = static_cast<int64_t>(j);
        break;
      }
    }
    if (rank >= 0) ++hits;
    m.true_match_ranks.push_back(rank);
  }
  double n = static_cast<double>(results.size());
  m.perceptiveness = static_cast<double>(hits) / n;
  m.selectiveness = sel_sum / n;
  m.mean_candidates = cand_sum / n;
  return m;
}

std::vector<int64_t> TopKCurve(const WorkloadMetrics& metrics, size_t max_k) {
  std::vector<int64_t> curve(max_k, 0);
  for (int64_t rank : metrics.true_match_ranks) {
    if (rank < 0) continue;
    for (size_t k = static_cast<size_t>(rank); k < max_k; ++k) {
      ++curve[k];
    }
  }
  return curve;
}

double PrecisionAtK(const std::vector<int64_t>& ranks, size_t k) {
  if (ranks.empty()) return 0.0;
  size_t hits = 0;
  for (int64_t r : ranks) {
    if (r >= 0 && r < static_cast<int64_t>(k)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ranks.size());
}

}  // namespace ftl::eval
