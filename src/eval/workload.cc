#include "eval/workload.h"

#include <unordered_set>

namespace ftl::eval {

Workload MakeWorkload(const traj::TrajectoryDatabase& p,
                      const traj::TrajectoryDatabase& q,
                      const WorkloadOptions& options) {
  // Owners present in Q with a non-trivial trajectory.
  std::unordered_set<traj::OwnerId> q_owners;
  if (options.require_match_in_q) {
    for (const auto& t : q) {
      if (t.owner() != traj::kUnknownOwner && t.size() >= 1) {
        q_owners.insert(t.owner());
      }
    }
  }
  // Eligible query indices.
  std::vector<size_t> eligible;
  for (size_t i = 0; i < p.size(); ++i) {
    const auto& t = p[i];
    if (t.size() < options.min_query_records) continue;
    if (options.require_match_in_q &&
        (t.owner() == traj::kUnknownOwner ||
         q_owners.find(t.owner()) == q_owners.end())) {
      continue;
    }
    eligible.push_back(i);
  }
  Rng rng(options.seed);
  auto picks = rng.SampleIndices(eligible.size(),
                                 std::min(options.num_queries,
                                          eligible.size()));
  Workload w;
  w.queries.reserve(picks.size());
  w.owners.reserve(picks.size());
  for (size_t pi : picks) {
    const auto& t = p[eligible[pi]];
    w.queries.push_back(t);
    w.owners.push_back(t.owner());
  }
  return w;
}

}  // namespace ftl::eval
