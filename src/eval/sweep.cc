#include "eval/sweep.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/evidence.h"
#include "core/naive_bayes.h"
#include "stats/grouped_poisson_binomial.h"
#include "util/thread_pool.h"

namespace ftl::eval {

namespace {

/// Prior-free log-likelihood of the evidence bits under a model, with
/// the same probability floor the NaiveBayesMatcher uses; folded over
/// the bucket histogram.
double LogLikelihood(const core::BucketEvidence& ev,
                     const core::CompatibilityModel& model, double floor) {
  double ll = 0.0;
  for (size_t u = 0; u < ev.horizon_units(); ++u) {
    int32_t n_u = ev.count[u];
    if (n_u == 0) continue;
    double s = model.IncompatProbByUnit(static_cast<int64_t>(u));
    s = std::min(1.0 - floor, std::max(floor, s));
    int32_t inc = ev.incompatible[u];
    ll += static_cast<double>(inc) * std::log(s) +
          static_cast<double>(n_u - inc) * std::log(1.0 - s);
  }
  return ll;
}

WorkloadMetrics Evaluate(
    const std::vector<QueryScores>& scores,
    const std::vector<traj::OwnerId>& owners,
    const traj::TrajectoryDatabase& db,
    const std::function<bool(const PairScore&)>& accept) {
  std::vector<core::QueryResult> results(scores.size());
  for (size_t qi = 0; qi < scores.size(); ++qi) {
    core::QueryResult& r = results[qi];
    for (const PairScore& ps : scores[qi]) {
      if (!accept(ps)) continue;
      core::MatchCandidate mc;
      mc.index = ps.candidate_index;
      mc.p1 = ps.p1;
      mc.p2 = ps.p2;
      mc.score = ps.Score();
      r.candidates.push_back(mc);
    }
    std::stable_sort(r.candidates.begin(), r.candidates.end(),
                     [](const core::MatchCandidate& a,
                        const core::MatchCandidate& b) {
                       return a.score > b.score;
                     });
    r.selectiveness = static_cast<double>(r.candidates.size()) /
                      static_cast<double>(db.size());
  }
  return ComputeMetrics(results, owners, db);
}

}  // namespace

std::vector<QueryScores> ComputePairScores(
    const core::FtlEngine& engine,
    const std::vector<traj::Trajectory>& queries,
    const traj::TrajectoryDatabase& db) {
  const core::ModelPair& models = engine.models();
  core::EvidenceOptions ev_opts = engine.evidence_options();
  double floor = engine.options().naive_bayes.prob_floor;
  std::vector<QueryScores> all(queries.size());
  // Per-worker scratch: bucket evidence and pmf workspaces are reused
  // across every pair a worker scores.
  struct SweepScratch {
    core::BucketEvidence ev;
    stats::GroupedPbWorkspace pb;
  };
  size_t workers =
      ParallelWorkerCount(queries.size(), engine.options().num_threads);
  std::vector<SweepScratch> scratches(workers);
  stats::GroupedTailParams tail = engine.options().alpha.tail;
  ParallelForWorkers(
      queries.size(), engine.options().num_threads,
      [&](size_t worker, size_t begin, size_t end) {
        SweepScratch& s = scratches[worker];
        for (size_t qi = begin; qi < end; ++qi) {
          QueryScores& out = all[qi];
          out.reserve(db.size());
          for (size_t ci = 0; ci < db.size(); ++ci) {
            core::CollectEvidence(queries[qi], db[ci], ev_opts, &s.ev);
            PairScore ps;
            ps.candidate_index = ci;
            int64_t k = s.ev.k_observed;
            s.ev.GroupsUnder(models.rejection, &s.pb.groups);
            ps.p1 = stats::GroupedPoissonBinomialTails(s.pb.groups, k, tail,
                                                       &s.pb)
                        .upper;
            s.ev.GroupsUnder(models.acceptance, &s.pb.groups);
            ps.p2 = stats::GroupedPoissonBinomialTails(s.pb.groups, k, tail,
                                                       &s.pb)
                        .lower;
            ps.log_lr = LogLikelihood(s.ev, models.rejection, floor) -
                        LogLikelihood(s.ev, models.acceptance, floor);
            out.push_back(ps);
          }
        }
      });
  return all;
}

WorkloadMetrics MetricsForAlpha(const std::vector<QueryScores>& scores,
                                const std::vector<traj::OwnerId>& owners,
                                const traj::TrajectoryDatabase& db,
                                double alpha1, double alpha2) {
  return Evaluate(scores, owners, db, [alpha1, alpha2](const PairScore& ps) {
    return ps.p1 >= alpha1 && ps.p2 < alpha2;
  });
}

WorkloadMetrics MetricsForPhi(const std::vector<QueryScores>& scores,
                              const std::vector<traj::OwnerId>& owners,
                              const traj::TrajectoryDatabase& db,
                              double phi_r) {
  phi_r = std::min(1.0 - 1e-12, std::max(1e-12, phi_r));
  double threshold = std::log(1.0 - phi_r) - std::log(phi_r);
  return Evaluate(scores, owners, db, [threshold](const PairScore& ps) {
    return ps.log_lr >= threshold;
  });
}

}  // namespace ftl::eval
