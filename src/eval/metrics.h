#ifndef FTL_EVAL_METRICS_H_
#define FTL_EVAL_METRICS_H_

/// \file metrics.h
/// The paper's evaluation metrics (Section III):
///  * perceptiveness — Pr(the returned candidate set contains a
///    trajectory of the query's owner),
///  * selectiveness  — E(|Q_P| / |Q|),
/// plus the top-k ranking curve of Section VII-C and precision@k used in
/// the baseline comparison of Section VII-E.

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "traj/database.h"

namespace ftl::eval {

/// Aggregated outcome of running a query workload.
struct WorkloadMetrics {
  double perceptiveness = 0.0;   ///< fraction of queries with a true match
  double selectiveness = 0.0;    ///< mean |Q_P| / |Q|
  double mean_candidates = 0.0;  ///< mean |Q_P|
  size_t num_queries = 0;

  /// 0-based rank of the true match within each query's ranked
  /// candidates; -1 when the true match was not returned. Parallel to
  /// the query order.
  std::vector<int64_t> true_match_ranks;
};

/// Computes workload metrics from per-query results. `owners[i]` is the
/// ground-truth owner of query i; a candidate counts as a true match
/// when its database trajectory has the same owner.
WorkloadMetrics ComputeMetrics(
    const std::vector<core::QueryResult>& results,
    const std::vector<traj::OwnerId>& owners,
    const traj::TrajectoryDatabase& db);

/// Figure 6 curve: entry k-1 is the number of queries whose true match
/// appears within the top-k ranked candidates, for k = 1..max_k.
std::vector<int64_t> TopKCurve(const WorkloadMetrics& metrics, size_t max_k);

/// Precision@k over ranks: fraction of queries whose true match rank is
/// in [0, k).
double PrecisionAtK(const std::vector<int64_t>& ranks, size_t k);

}  // namespace ftl::eval

#endif  // FTL_EVAL_METRICS_H_
