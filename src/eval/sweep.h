#ifndef FTL_EVAL_SWEEP_H_
#define FTL_EVAL_SWEEP_H_

/// \file sweep.h
/// Parameter-sweep support for the trade-off experiments (paper
/// Figure 5). The expensive part of a sweep — alignment, evidence
/// extraction, p-values, likelihoods — does not depend on α1/α2/φr, so
/// it is computed once per (query, candidate) pair and the thresholds
/// are applied afterwards in O(1) per setting.

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "traj/database.h"

namespace ftl::eval {

/// Threshold-independent scores of one (query, candidate) pair.
struct PairScore {
  size_t candidate_index = 0;
  double p1 = 0.0;      ///< Pr(K >= k | Mr), rejection-phase p-value
  double p2 = 1.0;      ///< Pr(K <= k | Ma), acceptance-phase p-value
  double log_lr = 0.0;  ///< log Pr(b|Mr) − log Pr(b|Ma) (prior-free)

  /// Ranking score (paper Eq. 2).
  double Score() const { return p1 * (1.0 - p2); }
};

/// All pair scores for one query.
using QueryScores = std::vector<PairScore>;

/// Computes pair scores for every (query, candidate) combination.
/// `engine` must be trained; its num_threads option parallelizes over
/// queries.
std::vector<QueryScores> ComputePairScores(
    const core::FtlEngine& engine,
    const std::vector<traj::Trajectory>& queries,
    const traj::TrajectoryDatabase& db);

/// Applies (α1, α2)-filtering thresholds to precomputed scores and
/// evaluates the workload.
WorkloadMetrics MetricsForAlpha(const std::vector<QueryScores>& scores,
                                const std::vector<traj::OwnerId>& owners,
                                const traj::TrajectoryDatabase& db,
                                double alpha1, double alpha2);

/// Applies the Naïve-Bayes prior φr to precomputed scores and evaluates
/// the workload: candidate accepted iff
/// log φr + log Pr(b|Mr) >= log(1−φr) + log Pr(b|Ma).
WorkloadMetrics MetricsForPhi(const std::vector<QueryScores>& scores,
                              const std::vector<traj::OwnerId>& owners,
                              const traj::TrajectoryDatabase& db,
                              double phi_r);

}  // namespace ftl::eval

#endif  // FTL_EVAL_SWEEP_H_
