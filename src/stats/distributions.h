#ifndef FTL_STATS_DISTRIBUTIONS_H_
#define FTL_STATS_DISTRIBUTIONS_H_

/// \file distributions.h
/// Standard distribution pmfs/pdfs/cdfs used by the Section VI analysis
/// and by the goodness-of-fit tests.

#include <cstdint>
#include <vector>

namespace ftl::stats {

/// log(k!) via lgamma.
double LogFactorial(int64_t k);

/// Binomial coefficient C(n, k) as a double; 0 when out of range.
double BinomialCoefficient(int64_t n, int64_t k);

/// Poisson pmf Pr(X = k) with mean `lambda`.
double PoissonPmf(int64_t k, double lambda);

/// Poisson cdf Pr(X <= k) with mean `lambda`.
double PoissonCdf(int64_t k, double lambda);

/// The first `n+1` Poisson pmf values [Pr(0), ..., Pr(n)].
std::vector<double> PoissonPmfVector(double lambda, int64_t n);

/// Exponential pdf with rate `rate`.
double ExponentialPdf(double y, double rate);

/// Exponential cdf with rate `rate`.
double ExponentialCdf(double y, double rate);

/// Standard normal cdf.
double NormalCdf(double z);

}  // namespace ftl::stats

#endif  // FTL_STATS_DISTRIBUTIONS_H_
