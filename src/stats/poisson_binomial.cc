#include "stats/poisson_binomial.h"

#include <algorithm>
#include <cmath>

namespace ftl::stats {

namespace {

double Clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

}  // namespace

PoissonBinomial::PoissonBinomial(std::vector<double> probs)
    : probs_(std::move(probs)) {
  for (double& p : probs_) p = Clamp01(p);
}

double PoissonBinomial::Mean() const {
  double m = 0;
  for (double p : probs_) m += p;
  return m;
}

double PoissonBinomial::Variance() const {
  double v = 0;
  for (double p : probs_) v += p * (1.0 - p);
  return v;
}

void PoissonBinomial::EnsurePmf() const {
  if (!pmf_.empty()) return;
  pmf_ = PoissonBinomialPmfDp(probs_);
  cdf_.resize(pmf_.size());
  double acc = 0;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    acc += pmf_[i];
    cdf_[i] = std::min(1.0, acc);
  }
  if (!cdf_.empty()) cdf_.back() = 1.0;  // guard against rounding
}

double PoissonBinomial::Pmf(int64_t k) const {
  if (k < 0 || k > static_cast<int64_t>(n())) return 0.0;
  EnsurePmf();
  return pmf_[static_cast<size_t>(k)];
}

double PoissonBinomial::Cdf(int64_t k) const {
  if (k < 0) return 0.0;
  if (k >= static_cast<int64_t>(n())) return 1.0;
  EnsurePmf();
  return cdf_[static_cast<size_t>(k)];
}

double PoissonBinomial::LowerTailPValue(int64_t k_observed) const {
  return Cdf(k_observed);
}

double PoissonBinomial::UpperTailPValue(int64_t k_observed) const {
  if (k_observed <= 0) return 1.0;
  return std::max(0.0, 1.0 - Cdf(k_observed - 1));
}

const std::vector<double>& PoissonBinomial::PmfVector() const {
  EnsurePmf();
  return pmf_;
}

double PoissonBinomialCdfRna(const std::vector<double>& probs, int64_t k) {
  double mu = 0.0, var = 0.0, m3 = 0.0;
  for (double p_raw : probs) {
    double p = Clamp01(p_raw);
    mu += p;
    var += p * (1.0 - p);
    m3 += p * (1.0 - p) * (1.0 - 2.0 * p);
  }
  if (k < 0) return 0.0;
  if (k >= static_cast<int64_t>(probs.size())) return 1.0;
  if (var <= 0.0) {
    // Deterministic sum.
    return static_cast<double>(k) + 0.5 >= mu ? 1.0 : 0.0;
  }
  double sigma = std::sqrt(var);
  double gamma = m3 / (var * sigma);
  double x = (static_cast<double>(k) + 0.5 - mu) / sigma;
  double z = x + gamma * (x * x - 1.0) / 6.0;
  double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  return std::min(1.0, std::max(0.0, cdf));
}

double PoissonBinomialUpperPValueRna(const std::vector<double>& probs,
                                     int64_t k) {
  if (k <= 0) return 1.0;
  return std::max(0.0, 1.0 - PoissonBinomialCdfRna(probs, k - 1));
}

std::vector<double> PoissonBinomialPmfDp(const std::vector<double>& probs) {
  std::vector<double> pmf(1, 1.0);
  pmf.reserve(probs.size() + 1);
  for (double p_raw : probs) {
    double p = Clamp01(p_raw);
    pmf.push_back(0.0);
    // In-place backward update: new[k] = old[k]*(1-p) + old[k-1]*p.
    for (size_t k = pmf.size() - 1; k > 0; --k) {
      pmf[k] = pmf[k] * (1.0 - p) + pmf[k - 1] * p;
    }
    pmf[0] *= (1.0 - p);
  }
  return pmf;
}

std::vector<double> PoissonBinomialPmfRecursive(
    const std::vector<double>& probs) {
  // Separate deterministic trials: p == 0 contributes nothing; p == 1
  // shifts the distribution right by one.
  std::vector<double> ps;
  size_t shift = 0;
  for (double p_raw : probs) {
    double p = Clamp01(p_raw);
    if (p <= 0.0) continue;
    if (p >= 1.0) {
      ++shift;
      continue;
    }
    ps.push_back(p);
  }
  // The alternating series cancels catastrophically once any odds ratio
  // p/(1-p) exceeds 1 (terms grow geometrically while the result stays
  // O(1)). Long-double accumulation buys a few digits of margin; the
  // stable regime remains p <= 0.5. Production code uses the DP.
  size_t n = ps.size();
  std::vector<long double> core(n + 1, 0.0L);
  // Pr(K=0) = prod(1 - p_i)
  long double p0 = 1.0L;
  for (double p : ps) p0 *= (1.0L - static_cast<long double>(p));
  core[0] = p0;
  // Precompute odds r_j = p_j / (1 - p_j); T(i) = sum_j r_j^i.
  std::vector<long double> odds(n);
  for (size_t j = 0; j < n; ++j) {
    odds[j] = static_cast<long double>(ps[j]) /
              (1.0L - static_cast<long double>(ps[j]));
  }
  std::vector<long double> t(n + 1, 0.0L);
  std::vector<long double> pow_acc = odds;  // r_j^i, updated per i
  for (size_t i = 1; i <= n; ++i) {
    long double ti = 0.0L;
    for (size_t j = 0; j < n; ++j) {
      if (i > 1) pow_acc[j] *= odds[j];
      ti += pow_acc[j];
    }
    t[i] = ti;
  }
  for (size_t k = 1; k <= n; ++k) {
    long double acc = 0.0L;
    long double sign = 1.0L;
    for (size_t i = 1; i <= k; ++i) {
      acc += sign * core[k - i] * t[i];
      sign = -sign;
    }
    core[k] = acc / static_cast<long double>(k);
    if (core[k] < 0.0L) core[k] = 0.0L;  // guard alternating-series jitter
  }
  // Apply the shift from p == 1 trials.
  std::vector<double> pmf(probs.size() + 1, 0.0);
  for (size_t k = 0; k <= n; ++k) {
    if (k + shift < pmf.size()) {
      pmf[k + shift] = static_cast<double>(core[k]);
    }
  }
  return pmf;
}

}  // namespace ftl::stats
