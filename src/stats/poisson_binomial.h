#ifndef FTL_STATS_POISSON_BINOMIAL_H_
#define FTL_STATS_POISSON_BINOMIAL_H_

/// \file poisson_binomial.h
/// The Poisson-Binomial distribution: the sum K of n independent
/// Bernoulli trials with heterogeneous success probabilities.
///
/// FTL's hypothesis tests model the number of *incompatible* mutual
/// segments in an alignment as Poisson-Binomial, parameterized by the
/// per-segment incompatibility probabilities looked up from the
/// rejection/acceptance model (paper Section IV-D, Eq. 1).
///
/// Two exact pmf algorithms are provided:
///  * a numerically-stable O(n^2) dynamic-programming convolution
///    (the default), and
///  * the Chen–Dempster–Liu recursive formula the paper cites (Eq. 1),
///    kept for fidelity and cross-validation.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftl::stats {

/// Immutable Poisson-Binomial distribution over trial probabilities.
class PoissonBinomial {
 public:
  /// Constructs from success probabilities; each must lie in [0, 1].
  /// Values outside are clamped.
  explicit PoissonBinomial(std::vector<double> probs);

  /// Number of trials n.
  size_t n() const { return probs_.size(); }

  /// Mean sum of probabilities.
  double Mean() const;

  /// Variance sum of p(1-p).
  double Variance() const;

  /// Pr(K = k); 0 outside [0, n]. Computed lazily once via the DP
  /// convolution and cached.
  double Pmf(int64_t k) const;

  /// Pr(K <= k).
  double Cdf(int64_t k) const;

  /// Lower-tail p-value Pr(K <= k_observed).
  ///
  /// Used by the α2-acceptance phase: under the *acceptance model*
  /// (different persons) the observed incompatible count of a true
  /// same-person pair is anomalously LOW, so a small lower-tail p-value
  /// rejects "different persons" and accepts the match.
  double LowerTailPValue(int64_t k_observed) const;

  /// Upper-tail p-value Pr(K >= k_observed).
  ///
  /// Used by the α1-rejection phase: under the *rejection model* (same
  /// person) the observed incompatible count of a different-person pair
  /// is anomalously HIGH, so a small upper-tail p-value rejects "same
  /// person".
  double UpperTailPValue(int64_t k_observed) const;

  /// Entire pmf vector, index k = 0..n.
  const std::vector<double>& PmfVector() const;

  /// The trial probabilities (clamped).
  const std::vector<double>& probs() const { return probs_; }

 private:
  void EnsurePmf() const;

  std::vector<double> probs_;
  mutable std::vector<double> pmf_;   // lazily filled
  mutable std::vector<double> cdf_;   // lazily filled
};

/// Exact pmf via O(n^2) convolution DP. Exposed for testing/benchmarks.
std::vector<double> PoissonBinomialPmfDp(const std::vector<double>& probs);

/// Refined normal approximation (RNA) to the Poisson-Binomial cdf:
/// Phi(x + gamma (x^2 - 1) / 6) with x = (k + 0.5 - mu) / sigma and
/// gamma the standardized skewness. O(n) instead of the DP's O(n^2);
/// accurate to ~1e-2 absolute for n in the hundreds. Used as the fast
/// path for very long alignments where the exact tail is unnecessary.
double PoissonBinomialCdfRna(const std::vector<double>& probs, int64_t k);

/// Upper-tail p-value Pr(K >= k) via the RNA.
double PoissonBinomialUpperPValueRna(const std::vector<double>& probs,
                                     int64_t k);

/// Exact pmf via the paper's recursive formula (Chen, Dempster & Liu;
/// Eq. 1):
///   Pr(K=0) = prod(1 - p_i)
///   Pr(K=k) = (1/k) * sum_{i=1..k} (-1)^{i-1} Pr(K=k-i) T(i),
///   T(i)    = sum_j (p_j / (1 - p_j))^i.
///
/// Numerically fragile for large n or p close to 1 (alternating series);
/// trials with p = 1 are handled by shifting, p = 0 dropped. Prefer the
/// DP for production use.
std::vector<double> PoissonBinomialPmfRecursive(
    const std::vector<double>& probs);

}  // namespace ftl::stats

#endif  // FTL_STATS_POISSON_BINOMIAL_H_
