#include "stats/distributions.h"

#include <cmath>

namespace ftl::stats {

double LogFactorial(int64_t k) {
  if (k <= 1) return 0.0;
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double BinomialCoefficient(int64_t n, int64_t k) {
  if (k < 0 || n < 0 || k > n) return 0.0;
  return std::exp(LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k));
}

double PoissonPmf(int64_t k, double lambda) {
  if (k < 0) return 0.0;
  if (lambda <= 0.0) return k == 0 ? 1.0 : 0.0;
  return std::exp(-lambda + static_cast<double>(k) * std::log(lambda) -
                  LogFactorial(k));
}

double PoissonCdf(int64_t k, double lambda) {
  if (k < 0) return 0.0;
  double acc = 0.0;
  for (int64_t i = 0; i <= k; ++i) acc += PoissonPmf(i, lambda);
  return std::min(1.0, acc);
}

std::vector<double> PoissonPmfVector(double lambda, int64_t n) {
  std::vector<double> v;
  v.reserve(static_cast<size_t>(n) + 1);
  for (int64_t k = 0; k <= n; ++k) v.push_back(PoissonPmf(k, lambda));
  return v;
}

double ExponentialPdf(double y, double rate) {
  if (y < 0.0 || rate <= 0.0) return 0.0;
  return rate * std::exp(-rate * y);
}

double ExponentialCdf(double y, double rate) {
  if (y <= 0.0 || rate <= 0.0) return 0.0;
  return 1.0 - std::exp(-rate * y);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace ftl::stats
