#include "stats/grouped_poisson_binomial.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simd/dispatch.h"

namespace ftl::stats {

namespace {

double Clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

/// Sums mean, variance and the third absolute/central moments needed by
/// the RNA and the Berry–Esseen guard in one O(H) pass.
struct GroupMoments {
  int64_t n = 0;
  double mu = 0.0;
  double var = 0.0;
  double m3 = 0.0;   // sum p(1-p)(1-2p): standardized-skewness numerator
  double psi = 0.0;  // sum p(1-p)(p^2 + (1-p)^2): Berry–Esseen numerator
};

GroupMoments ComputeMoments(const std::vector<TrialGroup>& groups) {
  GroupMoments m;
  for (const TrialGroup& g : groups) {
    if (g.count <= 0) continue;
    double c = static_cast<double>(g.count);
    double p = Clamp01(g.p);
    double q = 1.0 - p;
    m.n += g.count;
    m.mu += c * p;
    m.var += c * p * q;
    m.m3 += c * p * q * (q - p);
    m.psi += c * p * q * (p * p + q * q);
  }
  return m;
}

/// First `m + 1` entries of Binomial(n, p) for 0 < p < 1, m <= n.
/// When q^n is representable the prefix is built by the plain upward
/// ratio recurrence from q^n — one exp/log1p, no lgamma. Only when q^n
/// underflows (large n, small q) does it fall back to the mode-anchored
/// lgamma form. The query hot path truncates m at the observed k, so
/// this is O(min(n, k)) per group with a small constant.
void BinomialPmfPrefix(int64_t n, double p, size_t m,
                       std::vector<double>* out) {
  out->resize(m + 1);
  double nd = static_cast<double>(n);
  double log_q_n = nd * std::log1p(-p);
  double odds = p / (1.0 - p);
  double* b = out->data();
  if (log_q_n > -690.0) {
    double v = std::exp(log_q_n);
    b[0] = v;
    for (size_t j = 0; j < m; ++j) {
      v *= (nd - static_cast<double>(j)) / (static_cast<double>(j) + 1.0) *
           odds;
      b[j + 1] = v;
    }
    return;
  }
  // Underflow-safe: anchor at min(mode, m) and recur outward.
  int64_t anchor = static_cast<int64_t>((nd + 1.0) * p);
  anchor = std::min<int64_t>(anchor, static_cast<int64_t>(m));
  anchor = std::max<int64_t>(0, std::min(anchor, n));
  double ad = static_cast<double>(anchor);
  double log_a = std::lgamma(nd + 1.0) - std::lgamma(ad + 1.0) -
                 std::lgamma(nd - ad + 1.0) + ad * std::log(p) +
                 (nd - ad) * std::log1p(-p);
  double va = std::exp(log_a);
  b[static_cast<size_t>(anchor)] = va;
  double v = va;
  for (int64_t k = anchor; k < static_cast<int64_t>(m); ++k) {
    v *= static_cast<double>(n - k) / static_cast<double>(k + 1) * odds;
    b[static_cast<size_t>(k + 1)] = v;
  }
  v = va;
  for (int64_t k = anchor; k > 0; --k) {
    v *= static_cast<double>(k) / (static_cast<double>(n - k + 1) * odds);
    b[static_cast<size_t>(k - 1)] = v;
  }
}

/// Builds the truncated prefix pmf[0..cap_idx] of the variable (0 < p
/// < 1) part of the grouped distribution into ws->pmf. Truncation is
/// exact: entry t of a convolution only depends on entries <= t of both
/// operands, so each group's kernel is clipped to the first cap_idx + 1
/// entries. The convolution runs backward in place: slot t only reads
/// slots <= t, which still hold the previous round's values. Cost is
/// O(#groups * (cap_idx + 1)) — the dominant win on query workloads,
/// where the observed incompatible count k is far below the trial
/// count n.
void BuildTruncatedPrefix(const std::vector<TrialGroup>& groups,
                          int64_t cap_idx, GroupedPbWorkspace* ws) {
  const size_t cap = static_cast<size_t>(cap_idx) + 1;
  std::vector<double>& pmf = ws->pmf;
  pmf.assign(cap, 0.0);
  pmf[0] = 1.0;
  size_t len = 1;  // occupied prefix of pmf
  // The inner convolution loops run through the runtime-dispatched
  // kernel table (resolved once per call, amortized over the groups).
  // Every tier accumulates each output slot in the scalar summation
  // order, so the resulting pmf — and the p-values built from it — are
  // byte-identical across scalar and SIMD dispatch (simd/kernels.h).
  const simd::Kernels& kernels = simd::Dispatch();
  for (const TrialGroup& g : groups) {
    if (g.count <= 0) continue;
    double p = Clamp01(g.p);
    if (p <= 0.0 || p >= 1.0) continue;
    double* f = pmf.data();
    if (g.count == 1) {
      // Single Bernoulli trial: one in-place backward DP update.
      size_t new_len = std::min(cap, len + 1);
      kernels.bernoulli_step(f, new_len, p, 1.0 - p);
      len = new_len;
      continue;
    }
    size_t m = std::min(static_cast<size_t>(g.count), cap - 1);
    BinomialPmfPrefix(g.count, p, m, &ws->group_pmf);
    size_t new_len = std::min(cap, len + m);
    kernels.convolve_prefix(f, new_len, ws->group_pmf.data(), m);
    len = new_len;
  }
}

}  // namespace

void BinomialPmf(int64_t n, double p, std::vector<double>* out) {
  p = Clamp01(p);
  size_t len = static_cast<size_t>(n) + 1;
  out->assign(len, 0.0);
  if (n == 0) {
    (*out)[0] = 1.0;
    return;
  }
  if (p <= 0.0) {
    (*out)[0] = 1.0;
    return;
  }
  if (p >= 1.0) {
    (*out)[len - 1] = 1.0;
    return;
  }
  // Anchor at the mode, where the pmf is largest (no underflow), then
  // recur outward with exact multiplicative ratios:
  //   B(k+1)/B(k) = (n-k)/(k+1) * p/(1-p).
  double nd = static_cast<double>(n);
  int64_t mode = static_cast<int64_t>((nd + 1.0) * p);
  mode = std::min(n, std::max<int64_t>(0, mode));
  double md = static_cast<double>(mode);
  double log_mode = std::lgamma(nd + 1.0) - std::lgamma(md + 1.0) -
                    std::lgamma(nd - md + 1.0) + md * std::log(p) +
                    (nd - md) * std::log1p(-p);
  (*out)[static_cast<size_t>(mode)] = std::exp(log_mode);
  double odds = p / (1.0 - p);
  double v = (*out)[static_cast<size_t>(mode)];
  for (int64_t k = mode; k < n && v > 0.0; ++k) {
    v *= static_cast<double>(n - k) / static_cast<double>(k + 1) * odds;
    (*out)[static_cast<size_t>(k + 1)] = v;
  }
  v = (*out)[static_cast<size_t>(mode)];
  for (int64_t k = mode; k > 0 && v > 0.0; --k) {
    v *= static_cast<double>(k) /
         (static_cast<double>(n - k + 1) * odds);
    (*out)[static_cast<size_t>(k - 1)] = v;
  }
}

void GroupedPoissonBinomialPmf(const std::vector<TrialGroup>& groups,
                               GroupedPbWorkspace* ws) {
  int64_t total = GroupedTrialCount(groups);
  int64_t shift = 0;  // trials with p >= 1 always succeed
  // Convolve the non-deterministic groups into ws->pmf.
  ws->pmf.assign(1, 1.0);
  size_t top = 0;  // current highest support index of ws->pmf
  for (const TrialGroup& g : groups) {
    if (g.count <= 0) continue;
    double p = Clamp01(g.p);
    if (p <= 0.0) continue;  // always-failure trials: delta at 0
    if (p >= 1.0) {
      shift += g.count;
      continue;
    }
    BinomialPmf(g.count, p, &ws->group_pmf);
    size_t glen = ws->group_pmf.size();
    ws->tmp.assign(top + glen, 0.0);
    for (size_t j = 0; j <= top; ++j) {
      double fj = ws->pmf[j];
      if (fj == 0.0) continue;
      const double* b = ws->group_pmf.data();
      double* t = ws->tmp.data() + j;
      for (size_t k = 0; k < glen; ++k) t[k] += fj * b[k];
    }
    ws->pmf.swap(ws->tmp);
    top += glen - 1;
  }
  // Expand to the full support [0, total] applying the p = 1 shift and
  // the zero-probability padding, so the result is index-compatible
  // with PoissonBinomialPmfDp on the expanded trial vector.
  if (shift != 0 || top != static_cast<size_t>(total)) {
    ws->tmp.assign(static_cast<size_t>(total) + 1, 0.0);
    for (size_t j = 0; j <= top; ++j) {
      ws->tmp[j + static_cast<size_t>(shift)] = ws->pmf[j];
    }
    ws->pmf.swap(ws->tmp);
  }
}

double GroupedPoissonBinomialCdfRna(const std::vector<TrialGroup>& groups,
                                    int64_t k) {
  GroupMoments m = ComputeMoments(groups);
  if (k < 0) return 0.0;
  if (k >= m.n) return 1.0;
  if (m.var <= 0.0) {
    return static_cast<double>(k) + 0.5 >= m.mu ? 1.0 : 0.0;
  }
  double sigma = std::sqrt(m.var);
  double gamma = m.m3 / (m.var * sigma);
  double x = (static_cast<double>(k) + 0.5 - m.mu) / sigma;
  double z = x + gamma * (x * x - 1.0) / 6.0;
  double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  return std::min(1.0, std::max(0.0, cdf));
}

double GroupedBerryEsseenBound(const std::vector<TrialGroup>& groups) {
  GroupMoments m = ComputeMoments(groups);
  if (m.var <= 0.0) return std::numeric_limits<double>::infinity();
  // Shevtsova's constant for independent non-identical summands.
  return 0.5600 * m.psi / (m.var * std::sqrt(m.var));
}

GroupedTails GroupedPoissonBinomialTails(const std::vector<TrialGroup>& groups,
                                         int64_t k,
                                         const GroupedTailParams& params,
                                         GroupedPbWorkspace* ws) {
  GroupedTails t;
  int64_t n = GroupedTrialCount(groups);
  // Boundary semantics match PoissonBinomial::{Upper,Lower}TailPValue.
  if (k <= 0) {
    t.upper = 1.0;
  } else if (k > n) {
    t.upper = 0.0;
  }
  if (k < 0) {
    t.lower = 0.0;
    return t;
  }
  if (k >= n) {
    t.lower = 1.0;
    if (k > n) return t;  // upper already 0
  }
  if (n == 0) return t;

  if (static_cast<size_t>(n) >= params.rna_min_trials &&
      GroupedBerryEsseenBound(groups) <= params.rna_max_abs_error) {
    t.exact = false;
    if (k > 0 && k <= n) {
      t.upper = std::max(0.0, 1.0 - GroupedPoissonBinomialCdfRna(groups,
                                                                 k - 1));
    }
    if (k >= 0 && k < n) {
      t.lower = GroupedPoissonBinomialCdfRna(groups, k);
    }
    return t;
  }

  // Exact path: one truncated convolution of pmf[0..k] serves both
  // tails — lower = cdf(k), upper = 1 - cdf(k - 1). The upper tail's
  // 1 - cdf form loses at most ~k ulps absolutely (well inside the
  // 1e-12 parity budget) and never needs the far support, so per-pair
  // cost is O(#groups * (k + 1)) instead of O(n * support).
  int64_t shift = 0, n_var = 0;
  for (const TrialGroup& g : groups) {
    if (g.count <= 0) continue;
    double p = Clamp01(g.p);
    if (p >= 1.0) {
      shift += g.count;  // always-success trials move the support up
    } else if (p > 0.0) {
      n_var += g.count;
    }
  }
  int64_t kk = k - shift;
  double cdf_k, cdf_below;  // cdf(kk), cdf(kk - 1) on the variable part
  if (kk < 0) {
    cdf_k = 0.0;
    cdf_below = 0.0;
  } else {
    int64_t cap_idx = std::min(kk, n_var);
    BuildTruncatedPrefix(groups, cap_idx, ws);
    const double* f = ws->pmf.data();
    double acc = 0.0;
    int64_t below_idx = std::min(kk - 1, n_var);
    for (int64_t t2 = 0; t2 <= below_idx; ++t2) acc += f[t2];
    cdf_below = kk - 1 >= n_var ? 1.0 : std::min(1.0, acc);
    if (kk <= n_var && kk == below_idx + 1) acc += f[kk];
    cdf_k = kk >= n_var ? 1.0 : std::min(1.0, acc);
  }
  if (k >= 0 && k < n) t.lower = cdf_k;
  if (k > 0 && k <= n) {
    t.upper = std::min(1.0, std::max(0.0, 1.0 - cdf_below));
  }
  return t;
}

int64_t GroupedTrialCount(const std::vector<TrialGroup>& groups) {
  int64_t n = 0;
  for (const TrialGroup& g : groups) {
    if (g.count > 0) n += g.count;
  }
  return n;
}

double GroupedMean(const std::vector<TrialGroup>& groups) {
  double mu = 0.0;
  for (const TrialGroup& g : groups) {
    if (g.count > 0) mu += static_cast<double>(g.count) * Clamp01(g.p);
  }
  return mu;
}

}  // namespace ftl::stats
