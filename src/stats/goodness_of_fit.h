#ifndef FTL_STATS_GOODNESS_OF_FIT_H_
#define FTL_STATS_GOODNESS_OF_FIT_H_

/// \file goodness_of_fit.h
/// Simple goodness-of-fit measures used to validate the Section VI
/// theoretical distributions against Monte-Carlo simulation.

#include <cstdint>
#include <functional>
#include <vector>

namespace ftl::stats {

/// Total variation distance between two (sub-)pmfs; vectors are padded
/// with zeros to the longer length. Result in [0, 1].
double TotalVariationDistance(const std::vector<double>& p,
                              const std::vector<double>& q);

/// One-sample Kolmogorov–Smirnov statistic of `samples` against a
/// continuous cdf.
double KsStatistic(std::vector<double> samples,
                   const std::function<double(double)>& cdf);

/// Asymptotic KS p-value for statistic `d` with sample size `n`
/// (Kolmogorov distribution tail sum).
double KsPValue(double d, size_t n);

/// Pearson chi-square statistic of observed counts vs expected counts.
/// Bins with expected < `min_expected` are pooled into the last bin.
double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected,
                          double min_expected = 5.0);

}  // namespace ftl::stats

#endif  // FTL_STATS_GOODNESS_OF_FIT_H_
