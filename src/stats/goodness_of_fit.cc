#include "stats/goodness_of_fit.h"

#include <algorithm>
#include <cmath>

namespace ftl::stats {

double TotalVariationDistance(const std::vector<double>& p,
                              const std::vector<double>& q) {
  size_t n = std::max(p.size(), q.size());
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double pi = i < p.size() ? p[i] : 0.0;
    double qi = i < q.size() ? q[i] : 0.0;
    acc += std::abs(pi - qi);
  }
  return 0.5 * acc;
}

double KsStatistic(std::vector<double> samples,
                   const std::function<double(double)>& cdf) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    double f = cdf(samples[i]);
    double lo = static_cast<double>(i) / n;
    double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

double KsPValue(double d, size_t n) {
  if (n == 0 || d <= 0.0) return 1.0;
  double sqrt_n = std::sqrt(static_cast<double>(n));
  double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  double sum = 0.0;
  for (int j = 1; j <= 100; ++j) {
    double term = 2.0 * std::pow(-1.0, j - 1) *
                  std::exp(-2.0 * lambda * lambda * j * j);
    sum += term;
    if (std::abs(term) < 1e-12) break;
  }
  return std::min(1.0, std::max(0.0, sum));
}

double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected,
                          double min_expected) {
  size_t n = std::min(observed.size(), expected.size());
  double chi = 0.0;
  double pooled_obs = 0.0, pooled_exp = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (expected[i] < min_expected) {
      pooled_obs += observed[i];
      pooled_exp += expected[i];
      continue;
    }
    double d = observed[i] - expected[i];
    chi += d * d / expected[i];
  }
  if (pooled_exp > 0.0) {
    double d = pooled_obs - pooled_exp;
    chi += d * d / pooled_exp;
  }
  return chi;
}

}  // namespace ftl::stats
