#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ftl::stats {

void RunningStats::Add(double x) {
  if (n_ == 0 || std::isnan(x)) {
    // A NaN observation poisons min/max explicitly: std::min/max would
    // silently keep the old extreme (NaN compares false) while the mean
    // turns NaN, leaving the accumulator half-poisoned.
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::Variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::Stdv() const { return std::sqrt(Variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Stdv(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  // NaN breaks strict weak ordering, making std::sort undefined
  // behavior; propagate instead, matching Mean/Stdv.
  for (double x : xs) {
    if (std::isnan(x)) return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::min(1.0, std::max(0.0, q));
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(xs.size() - 1, lo + 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<double> EmpiricalPmf(const std::vector<int64_t>& xs) {
  if (xs.empty()) return {};
  int64_t mx = *std::max_element(xs.begin(), xs.end());
  if (mx < 0) return {};  // no non-negative observations: no support
  std::vector<double> pmf(static_cast<size_t>(mx) + 1, 0.0);
  int64_t counted = 0;
  for (int64_t x : xs) {
    if (x >= 0) {
      pmf[static_cast<size_t>(x)] += 1.0;
      ++counted;
    }
  }
  // Normalize over the observations that landed in the support;
  // dividing by xs.size() would leave the PMF summing to less than 1
  // whenever negative values were skipped.
  for (double& p : pmf) p /= static_cast<double>(counted);
  return pmf;
}

}  // namespace ftl::stats
