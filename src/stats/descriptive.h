#ifndef FTL_STATS_DESCRIPTIVE_H_
#define FTL_STATS_DESCRIPTIVE_H_

/// \file descriptive.h
/// Descriptive statistics and histogram helpers.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftl::stats {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations.
  size_t Count() const { return n_; }

  /// Sample mean (0 when empty).
  double Mean() const { return mean_; }

  /// Unbiased sample variance (0 for <2 observations).
  double Variance() const;

  /// Unbiased sample standard deviation.
  double Stdv() const;

  /// Minimum / maximum (0 when empty). A NaN observation poisons both,
  /// consistent with Mean/Variance.
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 when empty; NaN inputs propagate to NaN).
double Mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation (0 for <2 elements; NaN inputs
/// propagate to NaN).
double Stdv(const std::vector<double>& xs);

/// `q`-quantile (0<=q<=1) by linear interpolation on a copy. Any NaN
/// input yields NaN (never sorted: NaN breaks strict weak ordering).
double Quantile(std::vector<double> xs, double q);

/// Normalized histogram of the non-negative integer observations:
/// out[k] = fraction of *non-negative* observations equal to k,
/// k = 0..max, so the PMF always sums to 1 over its support. Negative
/// values are excluded; empty input or all-negative input returns {}.
std::vector<double> EmpiricalPmf(const std::vector<int64_t>& xs);

}  // namespace ftl::stats

#endif  // FTL_STATS_DESCRIPTIVE_H_
