#ifndef FTL_STATS_GROUPED_POISSON_BINOMIAL_H_
#define FTL_STATS_GROUPED_POISSON_BINOMIAL_H_

/// \file grouped_poisson_binomial.h
/// Grouped (bucket-compacted) Poisson-Binomial kernel.
///
/// FTL's per-pair trial probabilities are looked up from a
/// CompatibilityModel, which assigns ONE probability per time-gap
/// bucket — so the n-element probability vector contains at most
/// `horizon_units` distinct values. Exploiting that, the sum K of the
/// trials is a convolution of per-bucket Binomial(n_u, p_u) variables:
///
///   * each Binomial pmf is built in O(n_u) with a mode-anchored ratio
///     recurrence (numerically stable; no cancellation), and
///   * the group pmfs are convolved pairwise, which costs
///     sum_{u<v} n_u n_v — the per-trial DP's O(n^2) minus its
///     within-bucket quadratic part sum_u n_u^2 / 2. With H buckets the
///     cross term is bounded by O(H * n * max_u n_u / n) and collapses
///     toward O(n) for the concentrated histograms the alignment hot
///     path produces.
///
/// The tail evaluator adds an adaptive switch: for very long alignments
/// whose Berry–Esseen bound certifies the refined normal approximation
/// (RNA) to the requested absolute error, the O(H) RNA path answers
/// instead of the exact convolution.
///
/// All entry points write into a caller-owned workspace so the query
/// hot path performs no per-pair allocations after warm-up.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftl::stats {

/// One group of i.i.d. Bernoulli trials: `count` trials with success
/// probability `p` (clamped to [0, 1] on use).
struct TrialGroup {
  double p = 0.0;
  int64_t count = 0;
};

/// Reusable buffers for the grouped kernel. Default-constructed state
/// is valid; buffers grow on demand and keep their capacity across
/// calls (the per-thread "scratch arena" of the query hot path).
struct GroupedPbWorkspace {
  std::vector<TrialGroup> groups;  ///< staging area for callers
  std::vector<double> pmf;         ///< accumulated pmf of convolved groups
  std::vector<double> group_pmf;   ///< one group's Binomial pmf
  std::vector<double> tmp;         ///< convolution output buffer
};

/// Thresholds of the adaptive exact-vs-RNA switch.
struct GroupedTailParams {
  /// Below this many trials the exact convolution always answers.
  size_t rna_min_trials = 4096;

  /// The RNA may answer only when the Berry–Esseen bound on its
  /// absolute CDF error is at most this (conservative: the RNA's true
  /// error is typically an order of magnitude below the bound).
  double rna_max_abs_error = 5e-3;
};

/// Both tail p-values of K at one observed count.
struct GroupedTails {
  double upper = 1.0;  ///< Pr(K >= k)
  double lower = 1.0;  ///< Pr(K <= k)
  bool exact = true;   ///< false when the RNA path answered
};

/// Pmf of Binomial(n, p) into `out` (resized to n + 1). Stable
/// mode-anchored two-sided ratio recurrence, O(n). Exposed for tests.
void BinomialPmf(int64_t n, double p, std::vector<double>* out);

/// Exact pmf of K = sum over groups of Binomial(count, p), written to
/// ws->pmf (length = total trial count + 1). Groups with p <= 0 or
/// p >= 1 are handled as deterministic shifts, not convolved.
/// `groups` may alias ws->groups.
void GroupedPoissonBinomialPmf(const std::vector<TrialGroup>& groups,
                               GroupedPbWorkspace* ws);

/// Refined normal approximation to Pr(K <= k) over groups, O(H).
/// Matches PoissonBinomialCdfRna on the expanded trial vector.
double GroupedPoissonBinomialCdfRna(const std::vector<TrialGroup>& groups,
                                    int64_t k);

/// Berry–Esseen bound on the absolute CDF error of a normal
/// approximation to K; +inf when the variance is 0. Used as the guard
/// of the adaptive switch.
double GroupedBerryEsseenBound(const std::vector<TrialGroup>& groups);

/// Both tail p-values Pr(K >= k) and Pr(K <= k), exact (grouped
/// convolution) or via the RNA when `params` certifies it. Agrees with
/// PoissonBinomial::{Upper,Lower}TailPValue on the expanded trial
/// vector to ~1e-13 on the exact path. `groups` may alias ws->groups.
GroupedTails GroupedPoissonBinomialTails(const std::vector<TrialGroup>& groups,
                                         int64_t k,
                                         const GroupedTailParams& params,
                                         GroupedPbWorkspace* ws);

/// Total trial count over groups (clamping negative counts to 0).
int64_t GroupedTrialCount(const std::vector<TrialGroup>& groups);

/// Mean sum of p over groups (probabilities clamped to [0, 1]).
double GroupedMean(const std::vector<TrialGroup>& groups);

}  // namespace ftl::stats

#endif  // FTL_STATS_GROUPED_POISSON_BINOMIAL_H_
