#ifndef FTL_FTL_H_
#define FTL_FTL_H_

/// \file ftl.h
/// Umbrella header: the entire public FTL API.
///
/// Quick tour:
///   * traj::Trajectory / traj::TrajectoryDatabase — the data model,
///   * core::FtlEngine — train models and answer fuzzy-linking queries,
///   * core::AlphaFilter / core::NaiveBayesMatcher — the two classifiers,
///   * sim::* — synthetic city / taxi / population data generation,
///   * baselines::* — P2T/DTW/LCSS/EDR similarity search baselines,
///   * eval::* — perceptiveness/selectiveness/ranking metrics,
///   * analysis::* — the Section VI mutual-segment theory,
///   * io::* — CSV and model persistence,
///   * store::* — the crash-safe WAL-backed multi-segment store,
///   * serve::* — the `ftl serve` HTTP query daemon.

#include "analysis/feasibility.h"
#include "analysis/mutual_segment_analysis.h"
#include "baselines/search.h"
#include "baselines/similarity.h"
#include "core/alpha_filter.h"
#include "core/assignment.h"
#include "core/blocking.h"
#include "core/compatibility_model.h"
#include "core/engine.h"
#include "core/enrichment.h"
#include "core/evidence.h"
#include "core/identity_graph.h"
#include "core/model_builders.h"
#include "core/model_diagnostics.h"
#include "core/naive_bayes.h"
#include "core/sharded.h"
#include "core/streaming.h"
#include "privacy/attack_eval.h"
#include "privacy/defenses.h"
#include "eval/calibration.h"
#include "eval/metrics.h"
#include "eval/sweep.h"
#include "eval/workload.h"
#include "geo/point.h"
#include "geo/projection.h"
#include "io/csv.h"
#include "io/file_util.h"
#include "io/ftb.h"
#include "io/geojson.h"
#include "io/json_parse.h"
#include "io/model_io.h"
#include "io/report_json.h"
#include "serve/http.h"
#include "serve/server.h"
#include "sim/city.h"
#include "sim/observation.h"
#include "sim/path.h"
#include "sim/population_sim.h"
#include "sim/scenario.h"
#include "sim/taxi_sim.h"
#include "sim/transit_sim.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/goodness_of_fit.h"
#include "stats/poisson_binomial.h"
#include "store/compactor.h"
#include "store/manifest.h"
#include "store/memtable.h"
#include "store/store.h"
#include "store/wal.h"
#include "traj/alignment.h"
#include "traj/database.h"
#include "traj/flat_database.h"
#include "traj/record.h"
#include "traj/resample.h"
#include "traj/summary.h"
#include "traj/trajectory.h"
#include "traj/validation.h"
#include "traj/transforms.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

#endif  // FTL_FTL_H_
