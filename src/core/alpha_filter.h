#ifndef FTL_CORE_ALPHA_FILTER_H_
#define FTL_CORE_ALPHA_FILTER_H_

/// \file alpha_filter.h
/// The (α1, α2)-filtering classifier (paper Section IV-D).
///
/// Phase 1 (α1-rejection): under H0 "same person", the incompatible
/// mutual-segment count K is Poisson-Binomial with probabilities from
/// the rejection model; reject the candidate when the upper-tail
/// p-value p1 = Pr(K >= k_obs) < α1.
///
/// Phase 2 (α2-acceptance): under H0 "different persons", K is
/// Poisson-Binomial with probabilities from the acceptance model; accept
/// the candidate when the lower-tail p-value p2 = Pr(K <= k_obs) < α2.
///
/// Ranking score (paper Section V, Eq. 2): v = p1 · (1 − p2).

#include "core/compatibility_model.h"
#include "core/evidence.h"
#include "core/model_builders.h"
#include "stats/grouped_poisson_binomial.h"

namespace ftl::core {

/// Significance levels for the two phases.
struct AlphaFilterParams {
  double alpha1 = 0.01;  ///< rejection-phase significance
  double alpha2 = 0.05;  ///< acceptance-phase significance

  /// Exact-vs-RNA switch for the grouped-kernel scoring path.
  stats::GroupedTailParams tail;

  /// When true, the grouped-kernel path may reject a candidate from the
  /// O(1) Chernoff–KL bound alone: if exp(-n KL(k/n || mu/n)) < alpha1
  /// then p1 <= bound < alpha1, so the rejection decision is identical
  /// to the exact test and the pmf is never built. The reported p1 of
  /// such (discarded) candidates is the bound, not the exact tail.
  bool fast_reject = true;
};

/// Classification outcome for one (P, Q) pair.
struct AlphaFilterDecision {
  bool survived_rejection = false;  ///< p1 >= alpha1
  bool accepted = false;            ///< survived AND p2 < alpha2
  double p1 = 0.0;                  ///< Pr(K >= k | Mr)
  double p2 = 1.0;                  ///< Pr(K <= k | Ma)
  int64_t k_observed = 0;           ///< incompatible informative segments
  size_t n_segments = 0;            ///< informative mutual segments

  /// The Chernoff–KL bound alone rejected the candidate (grouped-kernel
  /// path only); p1 is the bound, and no tail was evaluated.
  bool fast_rejected = false;

  /// At least one evaluated tail answered via the refined normal
  /// approximation instead of the exact convolution.
  bool used_rna = false;

  /// Ranking score v = p1 (1 - p2); higher means more likely a match.
  double Score() const { return p1 * (1.0 - p2); }
};

/// Optional per-stage wall-clock breakdown of the grouped-kernel
/// Classify, filled only when the caller passes a non-null pointer
/// (the engine's sampled stage timers). Durations in nanoseconds.
struct AlphaFilterStageTimes {
  int64_t bucketing_ns = 0;  ///< GroupsUnder under both models
  int64_t tail_ns = 0;       ///< grouped-PB tail evaluation, both phases
};

/// Stateless classifier over a trained model pair.
class AlphaFilter {
 public:
  /// `models` must outlive the filter.
  AlphaFilter(const ModelPair& models, const AlphaFilterParams& params);

  /// Scores pre-collected evidence. The evidence must have been
  /// extracted with the same discretization as the models.
  AlphaFilterDecision Classify(const MutualSegmentEvidence& evidence) const;

  /// Scores bucket-compacted evidence with the grouped kernel, reusing
  /// `ws` buffers (no allocation after warm-up). Decisions are
  /// identical to the per-segment overload; p-values agree to ~1e-13
  /// on the exact path (see AlphaFilterParams::fast_reject and ::tail
  /// for the two sanctioned deviations). When `stage_times` is
  /// non-null the bucketing/tail stages are stopwatch-timed into it
  /// (two extra clock reads per stage; pass null on the hot path and
  /// sample).
  AlphaFilterDecision Classify(const BucketEvidence& evidence,
                               stats::GroupedPbWorkspace* ws,
                               AlphaFilterStageTimes* stage_times =
                                   nullptr) const;

  /// Convenience: collects evidence for (p, q) and classifies.
  AlphaFilterDecision Classify(const traj::Trajectory& p,
                               const traj::Trajectory& q,
                               const EvidenceOptions& options) const;

  const AlphaFilterParams& params() const { return params_; }

 private:
  const ModelPair& models_;
  AlphaFilterParams params_;
};

}  // namespace ftl::core

#endif  // FTL_CORE_ALPHA_FILTER_H_
