#ifndef FTL_CORE_NAIVE_BAYES_H_
#define FTL_CORE_NAIVE_BAYES_H_

/// \file naive_bayes.h
/// The Naïve-Bayes-matching classifier (paper Section IV-E).
///
/// Given the compatibility bit vector (b_1 ... b_n) of the informative
/// mutual segments, pick argmax_M Pr(M) · Pr((b_i) | M) over
/// M ∈ {Mr (same person), Ma (different persons)} with
/// Pr((b_i)|M) = Π_i s^(l_i)^{b_i} (1 − s^(l_i))^{1−b_i}.
/// Priors: φr = Pr(Mr), φa = 1 − φr.

#include "core/compatibility_model.h"
#include "core/evidence.h"
#include "core/model_builders.h"

namespace ftl::core {

/// Naïve-Bayes matcher parameters.
struct NaiveBayesParams {
  /// Prior probability φr that a pair of trajectories is of the same
  /// person. In practice a strictness knob: larger values loosen
  /// candidate selection (paper Section IV-E).
  double phi_r = 0.01;

  /// Probability clamp applied to model buckets so a single zero/one
  /// bucket cannot produce an infinite log-likelihood.
  double prob_floor = 1e-6;
};

/// Classification outcome for one (P, Q) pair.
struct NaiveBayesDecision {
  bool same_person = false;   ///< argmax model is Mr
  double log_post_same = 0;   ///< log [φr · Pr(b | Mr)]
  double log_post_diff = 0;   ///< log [φa · Pr(b | Ma)]
  size_t n_segments = 0;

  /// Posterior log-odds of "same person"; > 0 iff same_person.
  double LogOdds() const { return log_post_same - log_post_diff; }
};

/// Stateless Naïve-Bayes classifier over a trained model pair.
class NaiveBayesMatcher {
 public:
  /// `models` must outlive the matcher.
  NaiveBayesMatcher(const ModelPair& models, const NaiveBayesParams& params);

  /// Scores pre-collected evidence.
  NaiveBayesDecision Classify(const MutualSegmentEvidence& evidence) const;

  /// Scores bucket-compacted evidence: the per-segment likelihood
  /// product folds to one log/exp pair per occupied bucket, O(H)
  /// instead of O(n).
  NaiveBayesDecision Classify(const BucketEvidence& evidence) const;

  /// Convenience: collects evidence for (p, q) and classifies.
  NaiveBayesDecision Classify(const traj::Trajectory& p,
                              const traj::Trajectory& q,
                              const EvidenceOptions& options) const;

  const NaiveBayesParams& params() const { return params_; }

 private:
  double LogLikelihood(const MutualSegmentEvidence& evidence,
                       const CompatibilityModel& model) const;
  double LogLikelihood(const BucketEvidence& evidence,
                       const CompatibilityModel& model) const;

  const ModelPair& models_;
  NaiveBayesParams params_;
};

}  // namespace ftl::core

#endif  // FTL_CORE_NAIVE_BAYES_H_
