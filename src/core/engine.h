#ifndef FTL_CORE_ENGINE_H_
#define FTL_CORE_ENGINE_H_

/// \file engine.h
/// FtlEngine: the user-facing façade. Trains both models from a database
/// pair, answers fuzzy-linking queries with either classifier, and ranks
/// candidates by the paper's Eq. 2 score.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/alpha_filter.h"
#include "core/blocking.h"
#include "core/model_builders.h"
#include "core/naive_bayes.h"
#include "simd/kernels.h"
#include "traj/database.h"
#include "traj/flat_database.h"
#include "util/deadline.h"
#include "util/status.h"

namespace ftl::core {

/// Which classifier a query should use.
enum class Matcher {
  kAlphaFilter,  ///< (α1, α2)-filtering, hypothesis testing
  kNaiveBayes,   ///< Naïve-Bayes-matching
};

/// One returned candidate, with everything needed for ranking and
/// diagnostics.
struct MatchCandidate {
  size_t index = 0;        ///< position in the candidate database Q
  std::string label;       ///< candidate trajectory label
  double p1 = 0.0;         ///< rejection-phase p-value Pr(K>=k | Mr)
  double p2 = 1.0;         ///< acceptance-phase p-value Pr(K<=k | Ma)
  double score = 0.0;      ///< ranking score v = p1 (1 - p2), Eq. 2
  double nb_log_odds = 0;  ///< Naïve-Bayes posterior log-odds (if NB ran)
  int64_t k_observed = 0;  ///< incompatible informative mutual segments
  size_t n_segments = 0;   ///< informative mutual segments
};

/// The candidate set Q_P for one query, ranked by non-increasing score.
struct QueryResult {
  std::vector<MatchCandidate> candidates;

  /// |Q_P| / |Q| for this query (selectiveness contribution).
  double selectiveness = 0.0;

  /// True when the query stopped early (deadline or cancellation)
  /// and `candidates` covers only the first `evaluated` candidates.
  bool truncated = false;

  /// Why the query was truncated (kDeadlineExceeded / kCancelled);
  /// OK for complete results.
  Status status;

  /// Candidates actually scored. Equals the candidate count of the
  /// run when not truncated; for truncated results the evaluated
  /// candidates are always a prefix of the evaluation order, so a
  /// truncated result equals the full result filtered to indices
  /// that were reached.
  size_t evaluated = 0;
};

/// Per-query limits, all optional and inert by default: a
/// default-constructed QueryOptions never reads the clock and adds no
/// observable behavior. Checked cooperatively between candidates, so a
/// query stops within `check_every` candidate evaluations of the
/// deadline or cancellation signal.
struct QueryOptions {
  /// Stop scoring once this deadline passes; the partial result is
  /// returned with truncated=true and status kDeadlineExceeded.
  Deadline deadline;

  /// Cooperative cancellation; the partial result is returned with
  /// truncated=true and status kCancelled. Cancellation wins over the
  /// deadline when both fire.
  CancelToken cancel;

  /// How many candidates to score between checks. Smaller = tighter
  /// latency bound, larger = less checking overhead.
  size_t check_every = 16;

  /// kCancelled if cancellation was requested, kDeadlineExceeded if
  /// the deadline passed, OK otherwise.
  Status Check() const;
};

/// Engine configuration.
struct EngineOptions {
  ModelTrainingOptions training;
  AlphaFilterParams alpha;
  NaiveBayesParams naive_bayes;

  /// Candidates whose time span does not overlap the query's produce at
  /// most one informative mutual segment; when true they are still
  /// evaluated (the paper evaluates all pairs). Kept as an option so the
  /// ablation bench can measure the (small) effect of skipping them.
  bool evaluate_non_overlapping = true;

  /// Worker threads; 1 = serial. BatchQuery parallelizes across
  /// queries; a single Query parallelizes across candidates (chunked,
  /// with per-worker scratch — results are identical to serial).
  size_t num_threads = 1;
};

/// Opaque reusable scoring workspace for callers that drive many
/// serial QueryWithCandidates calls themselves — e.g. the store's
/// sharded multi-segment fan-out, which runs one engine sub-query per
/// work unit on its own workers. One instance per thread, never shared
/// concurrently; reusing it keeps steady-state scoring allocation-free
/// exactly like the engine's internal per-worker scratch.
class QueryScratch {
 public:
  QueryScratch();
  ~QueryScratch();
  QueryScratch(QueryScratch&&) noexcept;
  QueryScratch& operator=(QueryScratch&&) noexcept;
  QueryScratch(const QueryScratch&) = delete;
  QueryScratch& operator=(const QueryScratch&) = delete;

 private:
  friend class FtlEngine;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Trains models once, then answers many queries against a candidate
/// database.
class FtlEngine {
 public:
  explicit FtlEngine(EngineOptions options = {});

  /// Trains the rejection/acceptance models from the database pair.
  /// Must be called (successfully) before any query.
  Status Train(const traj::TrajectoryDatabase& p,
               const traj::TrajectoryDatabase& q);

  /// Installs externally trained models (e.g. loaded from disk).
  void SetModels(ModelPair models);

  /// True when models are available.
  bool trained() const { return trained_; }

  /// The trained models.
  const ModelPair& models() const { return models_; }

  /// Evidence extraction parameters implied by the training options.
  EvidenceOptions evidence_options() const;

  /// Finds the candidate set Q_P for `query` in `db` with the selected
  /// matcher; candidates are ranked by non-increasing Eq. 2 score.
  /// For kAlphaFilter, a candidate enters Q_P iff it passes both phases;
  /// for kNaiveBayes, iff the posterior favors "same person". In both
  /// cases p1/p2/score are computed for ranking.
  Result<QueryResult> Query(const traj::Trajectory& query,
                            const traj::TrajectoryDatabase& db,
                            Matcher matcher) const;

  /// Like Query, but with an explicit worker-thread override. Callers
  /// that already parallelize at a coarser grain (BatchQuery across
  /// queries, ShardedEngine across shards) pass 1 to keep the inner
  /// loop serial instead of oversubscribing. Results are identical for
  /// any thread count.
  Result<QueryResult> Query(const traj::Trajectory& query,
                            const traj::TrajectoryDatabase& db,
                            Matcher matcher, size_t num_threads) const;

  /// Like Query, but honoring a deadline / cancellation token. When a
  /// limit fires the result is still OK: it carries the candidates
  /// scored so far with truncated=true and a status explaining why.
  Result<QueryResult> Query(const traj::Trajectory& query,
                            const traj::TrajectoryDatabase& db,
                            Matcher matcher, const QueryOptions& qopts) const;

  /// Columnar (SoA) overloads: score against a FlatDatabase, streaming
  /// candidate records straight out of its contiguous columns (e.g. an
  /// mmap'd FTB file) with no per-record indirection. The evidence
  /// kernel is shared with the AoS path, so for equal record data the
  /// results are byte-identical to the TrajectoryDatabase overloads.
  Result<QueryResult> Query(const traj::FlatTrajectoryView& query,
                            const traj::FlatDatabase& db,
                            Matcher matcher) const;
  Result<QueryResult> Query(const traj::FlatTrajectoryView& query,
                            const traj::FlatDatabase& db, Matcher matcher,
                            size_t num_threads) const;
  Result<QueryResult> Query(const traj::FlatTrajectoryView& query,
                            const traj::FlatDatabase& db, Matcher matcher,
                            const QueryOptions& qopts) const;

  /// Like Query, but only evaluates the candidates at `candidate_indices`
  /// (e.g. the survivors of a BlockingIndex, or one sub-range of a
  /// multi-segment store fan-out). Selectiveness remains relative to
  /// the whole database. Candidates are evaluated in `candidate_indices`
  /// order and results are stable-sorted by score, so concatenating
  /// per-range results and re-running the same stable sort reproduces a
  /// whole-database query byte-for-byte (store::StoreSnapshot relies on
  /// this; DESIGN.md §12).
  Result<QueryResult> QueryWithCandidates(
      const traj::Trajectory& query, const traj::TrajectoryDatabase& db,
      const std::vector<size_t>& candidate_indices, Matcher matcher) const;
  Result<QueryResult> QueryWithCandidates(
      const traj::Trajectory& query, const traj::TrajectoryDatabase& db,
      const std::vector<size_t>& candidate_indices, Matcher matcher,
      const QueryOptions& qopts) const;
  Result<QueryResult> QueryWithCandidates(
      const traj::FlatTrajectoryView& query, const traj::FlatDatabase& db,
      const std::vector<size_t>& candidate_indices, Matcher matcher) const;
  Result<QueryResult> QueryWithCandidates(
      const traj::FlatTrajectoryView& query, const traj::FlatDatabase& db,
      const std::vector<size_t>& candidate_indices, Matcher matcher,
      const QueryOptions& qopts) const;

  /// Serial QueryWithCandidates with a caller-owned QueryScratch:
  /// always runs on the calling thread (never the engine pool), so a
  /// caller that shards candidates across its own workers — one
  /// scratch per worker — composes sub-results without oversubscribing
  /// threads. `qopts` and `scratch` may each be null.
  Result<QueryResult> QueryWithCandidates(
      const traj::Trajectory& query, const traj::TrajectoryDatabase& db,
      const std::vector<size_t>& candidate_indices, Matcher matcher,
      const QueryOptions* qopts, QueryScratch* scratch) const;
  Result<QueryResult> QueryWithCandidates(
      const traj::FlatTrajectoryView& query, const traj::FlatDatabase& db,
      const std::vector<size_t>& candidate_indices, Matcher matcher,
      const QueryOptions* qopts, QueryScratch* scratch) const;

  /// Derives the accept-preserving blocking contract for `matcher`
  /// from the trained models (requires trained()): `horizon_seconds`
  /// is the largest time gap an informative mutual segment can have
  /// under the evidence discretization, and `min_segments` the fewest
  /// informative segments any accepted candidate must carry — for
  /// kAlphaFilter from p2 >= Pr(K=0 | Ma) >= (1-p_max)^n against
  /// alpha2 (widened by the sanctioned RNA absolute-error budget), for
  /// kNaiveBayes from n · max-per-segment-LLR >= the prior log-odds
  /// gap. A BlockingIndex pruning only candidates that cannot reach
  /// `min_segments` therefore never changes an accept decision, so
  /// guaranteed-mode accept sets are byte-identical to exhaustive
  /// scoring (DESIGN.md §13). The identity assumes the default
  /// evaluate_non_overlapping=true; with the ablation-only false
  /// setting, exhaustive runs themselves skip non-overlapping
  /// candidates that blocking may score.
  BlockingGuarantee DeriveBlockingGuarantee(Matcher matcher) const;

  /// Query through a BlockingIndex built over `db`: generates the
  /// candidate set in `mode` (kOff scores everything, kGuaranteed
  /// preserves accept sets exactly, kAggressive applies the heuristic
  /// span/co-visitation blockers) and scores the survivors on the
  /// engine's thread pool. `scratch` (optional) keeps a query loop
  /// allocation-free; `qopts` (optional) carries deadline/cancel
  /// limits. The index must have been built over this `db`.
  Result<QueryResult> QueryBlocked(const traj::Trajectory& query,
                                   const traj::TrajectoryDatabase& db,
                                   const BlockingIndex& index,
                                   BlockingMode mode, Matcher matcher,
                                   BlockingScratch* scratch = nullptr,
                                   const QueryOptions* qopts = nullptr) const;
  Result<QueryResult> QueryBlocked(const traj::FlatTrajectoryView& query,
                                   const traj::FlatDatabase& db,
                                   const BlockingIndex& index,
                                   BlockingMode mode, Matcher matcher,
                                   BlockingScratch* scratch = nullptr,
                                   const QueryOptions* qopts = nullptr) const;

  /// Answers many queries, optionally in parallel
  /// (options.num_threads > 1). Results align with `queries` order.
  Result<std::vector<QueryResult>> BatchQuery(
      const std::vector<traj::Trajectory>& queries,
      const traj::TrajectoryDatabase& db, Matcher matcher) const;

  /// Like BatchQuery, but with a shared deadline / cancellation token.
  /// A fired limit never fails the batch: queries that started return
  /// their partial result (truncated=true), queries that had not
  /// started return an empty truncated result, and each carries its
  /// own status. Hard per-query errors still fail the batch.
  Result<std::vector<QueryResult>> BatchQuery(
      const std::vector<traj::Trajectory>& queries,
      const traj::TrajectoryDatabase& db, Matcher matcher,
      const QueryOptions& qopts) const;

  const EngineOptions& options() const { return options_; }

  /// Mutable access so harnesses can sweep α1/α2/φr without retraining.
  EngineOptions* mutable_options() { return &options_; }

 private:
  friend class QueryScratch;  // wraps ScoreScratch for external callers

  /// Per-thread scratch arena for the scoring hot path: evidence
  /// buffers, trial groups and pmf workspaces are reused across pairs
  /// instead of reallocated, so steady-state scoring is allocation
  /// free. One instance per worker thread; never shared concurrently.
  struct ScoreScratch {
    BucketEvidence evidence;
    stats::GroupedPbWorkspace pb;

    /// Segment staging buffers of the vector evidence kernels
    /// (simd/kernels.h); unused (but harmless) under scalar dispatch.
    simd::EvidenceScratch ev_scratch;

    /// Local metric tallies: plain integers bumped per pair and
    /// flushed to the global obs counters once per query, so the
    /// steady-state per-pair metrics cost is a handful of register
    /// increments (no atomics, no clock reads).
    int64_t n_candidates = 0;
    int64_t n_fast_reject = 0;
    int64_t n_exact_tail = 0;
    int64_t n_rna_tail = 0;

    /// Stage-timer sampling phase: every kStageSampleEvery-th pair of
    /// this scratch's stream (including the first) is wall-clocked
    /// per stage into the ftl_stage_* histograms.
    uint32_t sample_tick = 0;
  };

  /// Scores one (query, candidate) pair with every per-batch handle
  /// already hoisted by the caller: evidence options, both classifier
  /// views, and the resolved metric handles. The innermost unit of
  /// both ScorePair and ScorePairBatch; returns true when the
  /// candidate should enter Q_P. Template over the trajectory
  /// representation (Trajectory or FlatTrajectoryView); all
  /// instantiations live in engine.cc.
  template <typename QueryT, typename CandT>
  bool ScoreOne(const QueryT& query, const CandT& cand, Matcher matcher,
                const EvidenceOptions& ev_opts, const AlphaFilter& filter,
                const NaiveBayesMatcher& nb, MatchCandidate* out,
                ScoreScratch* scratch) const;

  /// Scores one (query, candidate) pair into `out` using `scratch`;
  /// returns true when the candidate should enter Q_P. Thin wrapper
  /// over ScoreOne that sets up the per-batch state for a batch of
  /// one; kept for the limit-polling query path, which needs per-pair
  /// granularity.
  template <typename QueryT, typename CandT>
  bool ScorePair(const QueryT& query, const CandT& cand, Matcher matcher,
                 MatchCandidate* out, ScoreScratch* scratch) const;

  /// Batch scoring entry point of the hot path: streams the `n`
  /// database candidates listed in `indices` through ScoreOne with
  /// kernel setup (evidence options, classifier construction, metric
  /// handle and SIMD dispatch resolution) hoisted once per batch.
  /// Writes per-candidate results to out[b] / accepted[b] (parallel to
  /// `indices`) and returns the number accepted. Candidate evaluation
  /// order inside the batch is the `indices` order, so results are
  /// byte-identical to n successive ScorePair calls.
  template <typename QueryT, typename DbT>
  size_t ScorePairBatch(const QueryT& query, const DbT& db,
                        const size_t* indices, size_t n, Matcher matcher,
                        MatchCandidate* out, uint8_t* accepted,
                        ScoreScratch* scratch) const;

  /// Shared implementation of the public query entry points, template
  /// over the storage backend: DbT is TrajectoryDatabase (AoS) or
  /// FlatDatabase (SoA columns), QueryT the matching trajectory type.
  /// `candidate_indices == nullptr` scores the whole database (and
  /// applies the evaluate_non_overlapping pre-filter). `scratch` may
  /// be null (a local one is used) and is only honored when
  /// num_threads <= 1; parallel runs build one scratch per worker.
  /// `qopts` may be null (no limits); when set, deadline/cancellation
  /// are polled every qopts->check_every candidates and a fired limit
  /// yields an OK partial result with truncated=true. Candidates are
  /// always evaluated in a stable order and truncation keeps a prefix
  /// of it, so partial results are reproducible.
  /// Shared body of the QueryBlocked overloads: candidate generation
  /// in `mode` followed by QueryImpl over the survivors.
  template <typename QueryT, typename DbT>
  Result<QueryResult> QueryBlockedImpl(const QueryT& query, const DbT& db,
                                       const BlockingIndex& index,
                                       BlockingMode mode, Matcher matcher,
                                       BlockingScratch* scratch,
                                       const QueryOptions* qopts) const;

  template <typename QueryT, typename DbT>
  Result<QueryResult> QueryImpl(const QueryT& query, const DbT& db,
                                const std::vector<size_t>* candidate_indices,
                                Matcher matcher, size_t num_threads,
                                ScoreScratch* scratch,
                                const QueryOptions* qopts) const;

  EngineOptions options_;
  ModelPair models_;
  bool trained_ = false;
};

}  // namespace ftl::core

#endif  // FTL_CORE_ENGINE_H_
