#include "core/model_diagnostics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace ftl::core {

namespace {

constexpr double kEps = 1e-9;

double Clamp01Eps(double p) {
  return std::min(1.0 - kEps, std::max(kEps, p));
}

/// Binary entropy in bits.
double H2(double p) {
  p = Clamp01Eps(p);
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/// Jensen-Shannon divergence (bits) between Bernoulli(p) and
/// Bernoulli(q); symmetric, bounded by 1 bit.
double BernoulliJs(double p, double q) {
  double m = 0.5 * (p + q);
  return H2(m) - 0.5 * H2(p) - 0.5 * H2(q);
}

/// Expected per-segment Naive-Bayes log-odds contribution (nats) when
/// the true model is the rejection model: KL(Bern(p_r) || Bern(p_a)).
double BernoulliKlNats(double p, double q) {
  p = Clamp01Eps(p);
  q = Clamp01Eps(q);
  return p * std::log(p / q) + (1.0 - p) * std::log((1.0 - p) / (1.0 - q));
}

}  // namespace

ModelDiagnostics DiagnoseModels(const ModelPair& models) {
  ModelDiagnostics d;
  size_t buckets = std::min(models.rejection.probs().size(),
                            models.acceptance.probs().size());
  d.bucket_js_bits.reserve(buckets);
  // Support weights: prefer the rejection model's support (it is
  // derived from every self-segment and reflects how often each gap
  // actually occurs); fall back to uniform.
  const auto& support = models.rejection.support();
  double weight_sum = 0.0, js_sum = 0.0, kl_sum = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    double pr = models.rejection.probs()[i];
    double pa = models.acceptance.probs()[i];
    double js = BernoulliJs(pr, pa);
    d.bucket_js_bits.push_back(js);
    if (pa <= pr) ++d.inverted_buckets;
    double w = i < support.size() && support[i] > 0
                   ? static_cast<double>(support[i])
                   : 1.0;
    weight_sum += w;
    js_sum += w * js;
    kl_sum += w * BernoulliKlNats(pr, pa);
  }
  if (weight_sum > 0.0) {
    d.mean_js_bits = js_sum / weight_sum;
    double mean_kl = kl_sum / weight_sum;
    d.segments_for_decisive_link =
        mean_kl > 0.0 ? 5.0 / mean_kl
                      : std::numeric_limits<double>::infinity();
  } else {
    d.segments_for_decisive_link =
        std::numeric_limits<double>::infinity();
  }
  return d;
}

std::string ModelDiagnostics::ToString() const {
  std::string out;
  out += "mean_js_bits=" + FormatDouble(mean_js_bits, 4);
  out += " inverted_buckets=" + std::to_string(inverted_buckets) + "/" +
         std::to_string(bucket_js_bits.size());
  out += " segments_for_decisive_link=";
  if (std::isinf(segments_for_decisive_link)) {
    out += "inf (models carry no signal)";
  } else {
    out += FormatDouble(segments_for_decisive_link, 1);
  }
  return out;
}

}  // namespace ftl::core
