#ifndef FTL_CORE_ENRICHMENT_H_
#define FTL_CORE_ENRICHMENT_H_

/// \file enrichment.h
/// Trajectory enrichment: the second knowledge gain of FTL
/// (paper Figure 2). Once trajectories P and Q are linked as the same
/// person, merging them yields a richer timeline than either source —
/// each record tagged with its provenance, exactly like the paper's
/// ID/Name/Time/Location/Source table.

#include <string>
#include <vector>

#include "traj/alignment.h"
#include "traj/trajectory.h"
#include "util/status.h"

namespace ftl::core {

/// One row of an enriched timeline.
struct EnrichedRecord {
  traj::Record record;
  std::string source;  ///< originating database/channel name
};

/// The merged view of two linked trajectories.
struct EnrichedTrajectory {
  std::string p_label;  ///< e.g. the eponymous identity ("Bob")
  std::string q_label;  ///< e.g. the anonymous card ("#2565")
  std::vector<EnrichedRecord> records;  ///< time-sorted, source-tagged

  /// Mutual segments that violate the speed constraint — a non-empty
  /// list is evidence the link may be wrong (or Vmax too tight).
  size_t incompatible_mutual_segments = 0;

  /// Fraction of records contributed by P.
  double p_fraction = 0.0;

  /// Mean gap of the merged timeline vs the better single source —
  /// the enrichment factor (>1 means the merge is denser than either
  /// source alone).
  double densification_factor = 1.0;
};

/// Options for the merge.
struct EnrichmentOptions {
  std::string p_source_name = "P";
  std::string q_source_name = "Q";
  /// Speed threshold used for the consistency audit, m/s.
  double vmax_mps = 120.0 * 1000.0 / 3600.0;
};

/// Merges two linked trajectories into an enriched, source-tagged
/// timeline. Fails when both inputs are empty.
Result<EnrichedTrajectory> Enrich(const traj::Trajectory& p,
                                  const traj::Trajectory& q,
                                  const EnrichmentOptions& options);

/// Renders the enriched timeline as the paper's Figure 2 style table.
std::string ToTableString(const EnrichedTrajectory& enriched,
                          size_t max_rows = 20);

}  // namespace ftl::core

#endif  // FTL_CORE_ENRICHMENT_H_
