#include "core/evidence.h"

#include <algorithm>

#include "simd/dispatch.h"
#include "traj/alignment.h"

namespace ftl::core {

int64_t MutualSegmentEvidence::ObservedIncompatible() const {
  int64_t k = 0;
  for (uint8_t b : incompatible) k += b;
  return k;
}

std::vector<double> MutualSegmentEvidence::ProbsUnder(
    const CompatibilityModel& model) const {
  std::vector<double> probs;
  probs.reserve(units.size());
  for (int32_t u : units) {
    probs.push_back(model.IncompatProbByUnit(u));
  }
  return probs;
}

MutualSegmentEvidence CollectEvidence(const traj::Trajectory& p,
                                      const traj::Trajectory& q,
                                      const EvidenceOptions& options) {
  MutualSegmentEvidence ev;
  traj::VisitMutualSegments(p, q, [&](const traj::Segment& s) {
    ++ev.total_mutual;
    int64_t dt = s.TimeLengthSeconds();
    int64_t unit =
        (dt + options.time_unit_seconds / 2) / options.time_unit_seconds;
    bool compatible = traj::IsCompatible(s.first, s.second, options.vmax_mps);
    if (unit >= options.horizon_units) {
      if (!compatible) ++ev.beyond_horizon_incompatible;
      return;
    }
    ev.units.push_back(static_cast<int32_t>(unit));
    ev.incompatible.push_back(compatible ? 0 : 1);
  });
  return ev;
}

void BucketEvidence::Reset(size_t horizon_units) {
  count.assign(horizon_units + 1, 0);  // last slot: beyond-horizon
  incompatible.assign(horizon_units + 1, 0);
  informative = 0;
  k_observed = 0;
  total_mutual = 0;
  beyond_horizon_incompatible = 0;
}

void BucketEvidence::GroupsUnder(const CompatibilityModel& model,
                                 std::vector<stats::TrialGroup>* out) const {
  out->clear();
  // Direct read of the model's bucket array; same semantics as
  // IncompatProbByUnit (0 beyond the model horizon) without the
  // per-unit call.
  const std::vector<double>& probs = model.probs();
  const size_t h = horizon_units();
  for (size_t u = 0; u < h; ++u) {
    if (count[u] == 0) continue;
    double p = u < probs.size() ? probs[u] : 0.0;
    out->push_back({p, static_cast<int64_t>(count[u])});
  }
}

namespace {

/// Column accessors: one arithmetic kernel below serves both storage
/// layouts, so AoS and SoA scoring perform identical floating-point
/// operations in identical order — the byte-identical-results contract
/// between the CSV and FTB backends rests on this sharing.
struct AosCols {
  const traj::Record* r;
  int64_t t(size_t i) const { return r[i].t; }
  double x(size_t i) const { return r[i].location.x; }
  double y(size_t i) const { return r[i].location.y; }
};

struct SoaCols {
  const int64_t* ts;
  const double* xs;
  const double* ys;
  int64_t t(size_t i) const { return ts[i]; }
  double x(size_t i) const { return xs[i]; }
  double y(size_t i) const { return ys[i]; }
};

/// The query-hot-path evidence kernel, layout-generic.
///
/// Mutual segments are exactly the source alternations of the merged
/// order, so instead of the record-by-record merge (one unpredictable
/// branch per record) the loop below walks Q's records and, per Q
/// record, skips the whole run of P records at or before it with a
/// tight scan. Only run boundaries — at most two per Q record — do any
/// segment work. Order and tie-breaking (P-first on equal timestamps)
/// match traj::VisitSegments exactly.
template <typename PC, typename QC>
void CollectEvidenceImpl(const PC& pc, size_t np, const QC& qc, size_t nq,
                         const EvidenceOptions& options, BucketEvidence* out) {
  out->Reset(static_cast<size_t>(options.horizon_units));
  const int64_t tu = options.time_unit_seconds;
  const int64_t half = tu / 2;
  const int64_t horizon = options.horizon_units;
  const double inv_tu = 1.0 / static_cast<double>(tu);
  const double vmax = options.vmax_mps;
  int32_t* cnt = out->count.data();
  int32_t* inc = out->incompatible.data();
  int64_t total_mutual = 0;
  // Branch-free per segment: beyond-horizon units clamp into the
  // overflow slot and the incompatibility bit is added arithmetically,
  // so the only data-dependent branches left are the (almost never
  // taken) one-off corrections of the reciprocal-multiply division.
  auto mutual = [&](const auto& a, size_t ai, const auto& b, size_t bi) {
    ++total_mutual;
    int64_t dt = b.t(bi) - a.t(ai);  // merge order => non-negative
    double dx = b.x(bi) - a.x(ai);
    double dy = b.y(bi) - a.y(ai);
    double limit = vmax * static_cast<double>(dt);
    int32_t incompat = dx * dx + dy * dy > limit * limit ? 1 : 0;
    // unit = (dt + half) / tu without the integer divide: multiply by
    // the reciprocal, then fix the possible one-off from float rounding.
    int64_t x = dt + half;
    int64_t unit = static_cast<int64_t>(static_cast<double>(x) * inv_tu);
    int64_t r = x - unit * tu;
    unit += (r >= tu) - (r < 0);
    size_t u = static_cast<size_t>(std::min(unit, horizon));
    ++cnt[u];
    inc[u] += incompat;
  };
  size_t i = 0;
  for (size_t j = 0; j < nq; ++j) {
    const int64_t tj = qc.t(j);
    if (i < np && pc.t(i) <= tj) {
      // A run of P records enters the merge before q[j]. Its first
      // record closes a Q->P alternation (except before the first Q
      // record, where it has no Q predecessor); interior records form
      // only self-segments; its last record opens the P->Q alternation
      // closed by q[j].
      if (j > 0) mutual(qc, j - 1, pc, i);
      while (i + 1 < np && pc.t(i + 1) <= tj) ++i;
      mutual(pc, i, qc, j);
      ++i;
    }
  }
  // P records after the last Q record: only the first closes an
  // alternation (with the last Q record); the rest are self-segments.
  if (i < np && nq > 0) mutual(qc, nq - 1, pc, i);
  // Fold the histogram into the aggregate counters in one pass.
  int64_t informative = 0, k = 0;
  const size_t h = static_cast<size_t>(horizon);
  for (size_t u = 0; u < h; ++u) {
    informative += cnt[u];
    k += inc[u];
  }
  out->total_mutual = total_mutual;
  out->informative = informative;
  out->k_observed = k;
  out->beyond_horizon_incompatible = inc[h];
}

}  // namespace

void CollectEvidence(const traj::Trajectory& p, const traj::Trajectory& q,
                     const EvidenceOptions& options, BucketEvidence* out) {
  CollectEvidenceImpl(AosCols{p.records().data()}, p.size(),
                      AosCols{q.records().data()}, q.size(), options, out);
}

void CollectEvidence(const traj::FlatTrajectoryView& p,
                     const traj::FlatTrajectoryView& q,
                     const EvidenceOptions& options, BucketEvidence* out,
                     simd::EvidenceScratch* scratch) {
  // The SoA path goes through the runtime-dispatched kernel table; the
  // scalar tier of that table is the same arithmetic as
  // CollectEvidenceImpl and the vector tiers are bit-identical to it
  // (simd/kernels.h contract), preserving AoS/SoA byte-equality at
  // every dispatch level. The histogram fold below is shared by all
  // tiers, so the kernels only fill cnt/inc and count segments.
  out->Reset(static_cast<size_t>(options.horizon_units));
  const simd::Kernels& kernels = simd::Dispatch();
  const simd::EvidenceParams params{options.time_unit_seconds,
                                    options.horizon_units, options.vmax_mps};
  thread_local simd::EvidenceScratch fallback_scratch;
  simd::EvidenceScratch* ss = scratch != nullptr ? scratch : &fallback_scratch;
  int32_t* cnt = out->count.data();
  int32_t* inc = out->incompatible.data();
  out->total_mutual = kernels.evidence_histogram(
      p.ts(), p.xs(), p.ys(), p.size(), q.ts(), q.xs(), q.ys(), q.size(),
      params, cnt, inc, ss);
  int64_t informative = 0, k = 0;
  const size_t h = static_cast<size_t>(options.horizon_units);
  for (size_t u = 0; u < h; ++u) {
    informative += cnt[u];
    k += inc[u];
  }
  out->informative = informative;
  out->k_observed = k;
  out->beyond_horizon_incompatible = inc[h];
}

void CompactEvidence(const MutualSegmentEvidence& ev, size_t horizon_units,
                     BucketEvidence* out) {
  out->Reset(horizon_units);
  out->total_mutual = ev.total_mutual;
  out->beyond_horizon_incompatible = ev.beyond_horizon_incompatible;
  for (size_t i = 0; i < ev.units.size(); ++i) {
    size_t u = static_cast<size_t>(ev.units[i]);
    if (u >= horizon_units) continue;  // defensive: stale horizon
    ++out->count[u];
    ++out->informative;
    if (ev.incompatible[i]) {
      ++out->incompatible[u];
      ++out->k_observed;
    }
  }
}

}  // namespace ftl::core
