#include "core/evidence.h"

#include "traj/alignment.h"

namespace ftl::core {

int64_t MutualSegmentEvidence::ObservedIncompatible() const {
  int64_t k = 0;
  for (uint8_t b : incompatible) k += b;
  return k;
}

std::vector<double> MutualSegmentEvidence::ProbsUnder(
    const CompatibilityModel& model) const {
  std::vector<double> probs;
  probs.reserve(units.size());
  for (int32_t u : units) {
    probs.push_back(model.IncompatProbByUnit(u));
  }
  return probs;
}

MutualSegmentEvidence CollectEvidence(const traj::Trajectory& p,
                                      const traj::Trajectory& q,
                                      const EvidenceOptions& options) {
  MutualSegmentEvidence ev;
  traj::ForEachMutualSegment(p, q, [&](const traj::Segment& s) {
    ++ev.total_mutual;
    int64_t dt = s.TimeLengthSeconds();
    int64_t unit =
        (dt + options.time_unit_seconds / 2) / options.time_unit_seconds;
    bool compatible = traj::IsCompatible(s.first, s.second, options.vmax_mps);
    if (unit >= options.horizon_units) {
      if (!compatible) ++ev.beyond_horizon_incompatible;
      return;
    }
    ev.units.push_back(static_cast<int32_t>(unit));
    ev.incompatible.push_back(compatible ? 0 : 1);
  });
  return ev;
}

}  // namespace ftl::core
