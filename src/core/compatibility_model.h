#ifndef FTL_CORE_COMPATIBILITY_MODEL_H_
#define FTL_CORE_COMPATIBILITY_MODEL_H_

/// \file compatibility_model.h
/// The statistic shared by the rejection and acceptance models: the
/// probability that a mutual segment of a given (rounded) time length is
/// *incompatible* (paper Sections IV-B/IV-C).

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ftl::core {

/// A trained set of per-time-bucket incompatibility probabilities,
/// M = {s^(1), ..., s^(k)}.
///
/// Time differences are discretized into units of `time_unit_seconds`
/// (rounded to the nearest integer unit, as in the paper). Buckets beyond
/// `horizon_units` have probability 0 — "given enough time, one can
/// always travel from one place to another".
class CompatibilityModel {
 public:
  CompatibilityModel() = default;

  /// Constructs a model from explicit bucket probabilities.
  /// probs[i] is the incompatibility probability for time-length bucket
  /// i units (bucket 0 = gaps rounding to 0).
  CompatibilityModel(int64_t time_unit_seconds, std::vector<double> probs);

  /// The discretization unit, seconds.
  int64_t time_unit_seconds() const { return time_unit_seconds_; }

  /// Number of buckets with (potentially) nonzero probability.
  size_t horizon_units() const { return probs_.size(); }

  /// Rounds a time difference (seconds) to its bucket index.
  int64_t UnitIndex(int64_t timediff_seconds) const;

  /// Incompatibility probability s^(i) for a mutual segment with the
  /// given time difference; 0 beyond the horizon.
  double IncompatProb(int64_t timediff_seconds) const;

  /// Incompatibility probability by bucket index; 0 beyond the horizon.
  double IncompatProbByUnit(int64_t unit) const;

  /// Raw bucket probabilities.
  const std::vector<double>& probs() const { return probs_; }

  /// Number of training observations per bucket (empty if the model was
  /// constructed directly from probabilities).
  const std::vector<int64_t>& support() const { return support_; }
  void set_support(std::vector<int64_t> support) {
    support_ = std::move(support);
  }

  /// Graceful degradation for models whose support is known (training
  /// counts or a loaded model file): buckets never seen at training
  /// time that carry a bare 0.0 probability are backfilled by linear
  /// interpolation between the nearest supported neighbors, clamped to
  /// [0, 1] (leading gaps copy the first supported value; trailing
  /// gaps decay to 0 at the horizon, matching the trainer's own gap
  /// fill). A query over an out-of-support time gap then scores
  /// against a plausible probability instead of a hard "impossible"
  /// zero. Idempotent; returns the number of buckets backfilled, also
  /// available afterwards as repaired_buckets(). No-op for models
  /// without support counts or already-filled (freshly trained) ones.
  size_t RepairUnsupportedBuckets();

  /// Buckets backfilled by RepairUnsupportedBuckets (0 before repair).
  size_t repaired_buckets() const { return repaired_buckets_; }

  /// Sanity check: unit positive, probabilities within [0,1].
  Status Validate() const;

  /// Compact human-readable dump (bucket:prob pairs).
  std::string ToString() const;

 private:
  int64_t time_unit_seconds_ = 60;
  std::vector<double> probs_;
  std::vector<int64_t> support_;
  bool repaired_ = false;
  size_t repaired_buckets_ = 0;
};

}  // namespace ftl::core

#endif  // FTL_CORE_COMPATIBILITY_MODEL_H_
