#include "core/alpha_filter.h"

#include "stats/poisson_binomial.h"

namespace ftl::core {

AlphaFilter::AlphaFilter(const ModelPair& models,
                         const AlphaFilterParams& params)
    : models_(models), params_(params) {}

AlphaFilterDecision AlphaFilter::Classify(
    const MutualSegmentEvidence& evidence) const {
  AlphaFilterDecision d;
  d.n_segments = evidence.size();
  d.k_observed = evidence.ObservedIncompatible();

  // Phase 1: α1-rejection against the rejection model.
  stats::PoissonBinomial reject_dist(evidence.ProbsUnder(models_.rejection));
  d.p1 = reject_dist.UpperTailPValue(d.k_observed);
  d.survived_rejection = d.p1 >= params_.alpha1;
  if (!d.survived_rejection) return d;

  // Phase 2: α2-acceptance against the acceptance model.
  stats::PoissonBinomial accept_dist(
      evidence.ProbsUnder(models_.acceptance));
  d.p2 = accept_dist.LowerTailPValue(d.k_observed);
  d.accepted = d.p2 < params_.alpha2;
  return d;
}

AlphaFilterDecision AlphaFilter::Classify(
    const traj::Trajectory& p, const traj::Trajectory& q,
    const EvidenceOptions& options) const {
  return Classify(CollectEvidence(p, q, options));
}

}  // namespace ftl::core
