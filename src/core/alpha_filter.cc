#include "core/alpha_filter.h"

#include <algorithm>
#include <cmath>

#include "stats/poisson_binomial.h"
#include "util/stopwatch.h"

namespace ftl::core {

AlphaFilter::AlphaFilter(const ModelPair& models,
                         const AlphaFilterParams& params)
    : models_(models), params_(params) {}

AlphaFilterDecision AlphaFilter::Classify(
    const MutualSegmentEvidence& evidence) const {
  AlphaFilterDecision d;
  d.n_segments = evidence.size();
  d.k_observed = evidence.ObservedIncompatible();

  // Phase 1: α1-rejection against the rejection model.
  stats::PoissonBinomial reject_dist(evidence.ProbsUnder(models_.rejection));
  d.p1 = reject_dist.UpperTailPValue(d.k_observed);
  d.survived_rejection = d.p1 >= params_.alpha1;
  if (!d.survived_rejection) return d;

  // Phase 2: α2-acceptance against the acceptance model.
  stats::PoissonBinomial accept_dist(
      evidence.ProbsUnder(models_.acceptance));
  d.p2 = accept_dist.LowerTailPValue(d.k_observed);
  d.accepted = d.p2 < params_.alpha2;
  return d;
}

AlphaFilterDecision AlphaFilter::Classify(
    const BucketEvidence& evidence, stats::GroupedPbWorkspace* ws,
    AlphaFilterStageTimes* stage_times) const {
  AlphaFilterDecision d;
  d.n_segments = static_cast<size_t>(evidence.informative);
  d.k_observed = evidence.k_observed;

  // Phase 1: α1-rejection against the rejection model.
  if (params_.fast_reject && evidence.informative > 0) {
    // Mean under the rejection model, read straight off the bucket
    // histogram — the fast-reject path never materializes trial groups.
    // Unconditional multiply-add: empty units contribute 0, and the
    // branchless loop vectorizes (a skip test on ~half-occupied
    // histograms would mispredict constantly). Units past the model
    // horizon have probability 0, matching GroupsUnder.
    const std::vector<double>& probs = models_.rejection.probs();
    double mu = 0.0;
    const size_t h = std::min(evidence.horizon_units(), probs.size());
    for (size_t u = 0; u < h; ++u) {
      mu += static_cast<double>(evidence.count[u]) * probs[u];
    }
    double nd = static_cast<double>(evidence.informative);
    double kd = static_cast<double>(d.k_observed);
    if (kd > mu && mu > 0.0) {
      // Chernoff bound in KL form (Hoeffding 1963, Theorem 1, which
      // covers heterogeneous Bernoulli sums):
      //   Pr(K >= k) <= exp(-n KL(k/n || mu/n)),
      // at least as tight as the quadratic exp(-2 (k - mu)^2 / n) by
      // Pinsker's inequality, and far tighter when mu/n is small — the
      // typical rejection-model regime, where it discharges most
      // non-matching candidates without touching the pmf.
      double a = kd / nd;
      double b = mu / nd;
      double kl = a * std::log(a / b);
      if (a < 1.0) kl += (1.0 - a) * std::log((1.0 - a) / (1.0 - b));
      double bound = std::exp(-nd * kl);
      if (bound < params_.alpha1) {
        // p1 <= bound < alpha1: same rejection as the exact tail.
        d.p1 = bound;
        d.fast_rejected = true;
        return d;
      }
    }
  }
  // The sampled stage timers wrap the two grouped-kernel stages; when
  // stage_times is null (the hot path) no clock is read.
  Stopwatch sw;
  evidence.GroupsUnder(models_.rejection, &ws->groups);
  if (stage_times != nullptr) {
    stage_times->bucketing_ns +=
        static_cast<int64_t>(sw.ElapsedSeconds() * 1e9);
    sw.Reset();
  }
  stats::GroupedTails rej = stats::GroupedPoissonBinomialTails(
      ws->groups, d.k_observed, params_.tail, ws);
  if (stage_times != nullptr) {
    stage_times->tail_ns += static_cast<int64_t>(sw.ElapsedSeconds() * 1e9);
  }
  d.p1 = rej.upper;
  d.used_rna = !rej.exact;
  d.survived_rejection = d.p1 >= params_.alpha1;
  if (!d.survived_rejection) return d;

  // Phase 2: α2-acceptance against the acceptance model.
  if (stage_times != nullptr) sw.Reset();
  evidence.GroupsUnder(models_.acceptance, &ws->groups);
  if (stage_times != nullptr) {
    stage_times->bucketing_ns +=
        static_cast<int64_t>(sw.ElapsedSeconds() * 1e9);
    sw.Reset();
  }
  stats::GroupedTails acc = stats::GroupedPoissonBinomialTails(
      ws->groups, d.k_observed, params_.tail, ws);
  if (stage_times != nullptr) {
    stage_times->tail_ns += static_cast<int64_t>(sw.ElapsedSeconds() * 1e9);
  }
  d.p2 = acc.lower;
  d.used_rna = d.used_rna || !acc.exact;
  d.accepted = d.p2 < params_.alpha2;
  return d;
}

AlphaFilterDecision AlphaFilter::Classify(
    const traj::Trajectory& p, const traj::Trajectory& q,
    const EvidenceOptions& options) const {
  return Classify(CollectEvidence(p, q, options));
}

}  // namespace ftl::core
