#include "core/compatibility_model.h"

#include "util/string_util.h"

namespace ftl::core {

CompatibilityModel::CompatibilityModel(int64_t time_unit_seconds,
                                       std::vector<double> probs)
    : time_unit_seconds_(time_unit_seconds), probs_(std::move(probs)) {}

int64_t CompatibilityModel::UnitIndex(int64_t timediff_seconds) const {
  // Round to the nearest integer number of units (paper: "after rounding
  // to the nearest integer").
  return (timediff_seconds + time_unit_seconds_ / 2) / time_unit_seconds_;
}

double CompatibilityModel::IncompatProb(int64_t timediff_seconds) const {
  return IncompatProbByUnit(UnitIndex(timediff_seconds));
}

double CompatibilityModel::IncompatProbByUnit(int64_t unit) const {
  if (unit < 0 || unit >= static_cast<int64_t>(probs_.size())) return 0.0;
  return probs_[static_cast<size_t>(unit)];
}

Status CompatibilityModel::Validate() const {
  if (time_unit_seconds_ <= 0) {
    return Status::InvalidArgument("time unit must be positive");
  }
  for (size_t i = 0; i < probs_.size(); ++i) {
    if (probs_[i] < 0.0 || probs_[i] > 1.0) {
      return Status::InvalidArgument(
          "bucket " + std::to_string(i) + " probability out of [0,1]: " +
          std::to_string(probs_[i]));
    }
  }
  return Status::OK();
}

std::string CompatibilityModel::ToString() const {
  std::string out = "unit=" + std::to_string(time_unit_seconds_) + "s probs=[";
  for (size_t i = 0; i < probs_.size(); ++i) {
    if (i) out += ' ';
    out += FormatDouble(probs_[i], 4);
  }
  out += "]";
  return out;
}

}  // namespace ftl::core
