#include "core/compatibility_model.h"

#include <algorithm>

#include "util/string_util.h"

namespace ftl::core {

CompatibilityModel::CompatibilityModel(int64_t time_unit_seconds,
                                       std::vector<double> probs)
    : time_unit_seconds_(time_unit_seconds), probs_(std::move(probs)) {}

int64_t CompatibilityModel::UnitIndex(int64_t timediff_seconds) const {
  // Round to the nearest integer number of units (paper: "after rounding
  // to the nearest integer").
  return (timediff_seconds + time_unit_seconds_ / 2) / time_unit_seconds_;
}

double CompatibilityModel::IncompatProb(int64_t timediff_seconds) const {
  return IncompatProbByUnit(UnitIndex(timediff_seconds));
}

double CompatibilityModel::IncompatProbByUnit(int64_t unit) const {
  if (unit < 0 || unit >= static_cast<int64_t>(probs_.size())) return 0.0;
  return probs_[static_cast<size_t>(unit)];
}

size_t CompatibilityModel::RepairUnsupportedBuckets() {
  if (repaired_) return repaired_buckets_;
  repaired_ = true;
  if (support_.size() != probs_.size() || probs_.empty()) return 0;
  auto needs_fill = [this](size_t i) {
    return support_[i] == 0 && probs_[i] == 0.0;
  };
  size_t first_supported = probs_.size();
  for (size_t i = 0; i < probs_.size(); ++i) {
    if (support_[i] > 0) {
      first_supported = i;
      break;
    }
  }
  if (first_supported == probs_.size()) return 0;  // no anchor anywhere
  auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
  for (size_t i = 0; i < first_supported; ++i) {
    if (!needs_fill(i)) continue;
    probs_[i] = clamp01(probs_[first_supported]);
    ++repaired_buckets_;
  }
  size_t last_supported = first_supported;
  for (size_t i = first_supported + 1; i < probs_.size(); ++i) {
    if (support_[i] == 0) continue;
    if (i > last_supported + 1) {
      double lo = probs_[last_supported];
      double hi = probs_[i];
      for (size_t j = last_supported + 1; j < i; ++j) {
        if (!needs_fill(j)) continue;
        double t = static_cast<double>(j - last_supported) /
                   static_cast<double>(i - last_supported);
        probs_[j] = clamp01(lo + (hi - lo) * t);
        ++repaired_buckets_;
      }
    }
    last_supported = i;
  }
  if (last_supported + 1 < probs_.size()) {
    double lo = probs_[last_supported];
    size_t span = probs_.size() - last_supported;
    for (size_t j = last_supported + 1; j < probs_.size(); ++j) {
      if (!needs_fill(j)) continue;
      double t = static_cast<double>(j - last_supported) /
                 static_cast<double>(span);
      probs_[j] = clamp01(lo * (1.0 - t));
      ++repaired_buckets_;
    }
  }
  return repaired_buckets_;
}

Status CompatibilityModel::Validate() const {
  if (time_unit_seconds_ <= 0) {
    return Status::InvalidArgument("time unit must be positive");
  }
  for (size_t i = 0; i < probs_.size(); ++i) {
    if (probs_[i] < 0.0 || probs_[i] > 1.0) {
      return Status::InvalidArgument(
          "bucket " + std::to_string(i) + " probability out of [0,1]: " +
          std::to_string(probs_[i]));
    }
  }
  return Status::OK();
}

std::string CompatibilityModel::ToString() const {
  std::string out = "unit=" + std::to_string(time_unit_seconds_) + "s probs=[";
  for (size_t i = 0; i < probs_.size(); ++i) {
    if (i) out += ' ';
    out += FormatDouble(probs_[i], 4);
  }
  out += "]";
  return out;
}

}  // namespace ftl::core
