#ifndef FTL_CORE_EVIDENCE_H_
#define FTL_CORE_EVIDENCE_H_

/// \file evidence.h
/// Extraction of the classification evidence for a trajectory pair: the
/// time-length bucket and observed compatibility bit of every mutual
/// segment in the alignment W_PQ.
///
/// Both classifiers consume the same evidence, so it is collected once
/// per (P, Q) pair and then scored against each model.

#include <cstdint>
#include <vector>

#include "core/compatibility_model.h"
#include "simd/kernels.h"
#include "stats/grouped_poisson_binomial.h"
#include "traj/flat_database.h"
#include "traj/trajectory.h"

namespace ftl::core {

/// Per-pair mutual-segment observations.
struct MutualSegmentEvidence {
  /// Bucket index (rounded time units) of each informative mutual
  /// segment, i.e. those within the model horizon. Parallel to
  /// `incompatible`.
  std::vector<int32_t> units;

  /// Observed incompatibility bit b_i per informative mutual segment.
  std::vector<uint8_t> incompatible;

  /// Total mutual segments in the alignment including beyond-horizon
  /// ones (those are always compatible by assumption and carry no
  /// signal, but the count is useful diagnostics).
  int64_t total_mutual = 0;

  /// Beyond-horizon segments observed *incompatible* — physically
  /// impossible under a correct horizon; nonzero values indicate the
  /// horizon/Vmax configuration is too tight for the data.
  int64_t beyond_horizon_incompatible = 0;

  /// Number of informative segments.
  size_t size() const { return units.size(); }

  /// Observed number of incompatible informative segments (the test
  /// statistic K).
  int64_t ObservedIncompatible() const;

  /// Per-segment incompatibility probabilities under `model`
  /// (the Poisson-Binomial parameter vector).
  std::vector<double> ProbsUnder(const CompatibilityModel& model) const;
};

/// Parameters of evidence extraction; must match the models' training
/// discretization.
struct EvidenceOptions {
  double vmax_mps = 120.0 * 1000.0 / 3600.0;
  int64_t time_unit_seconds = 60;
  int64_t horizon_units = 60;
};

/// Streams the alignment of (p, q) and collects evidence.
MutualSegmentEvidence CollectEvidence(const traj::Trajectory& p,
                                      const traj::Trajectory& q,
                                      const EvidenceOptions& options);

/// Bucket-compacted per-pair evidence: the same observations as
/// MutualSegmentEvidence, folded into a per-time-unit histogram. Since
/// a CompatibilityModel assigns one probability per unit, this loses
/// nothing either classifier needs while shrinking per-pair state from
/// O(n) to O(horizon_units) — the representation the query hot path
/// scores from.
struct BucketEvidence {
  /// Informative mutual segments per unit; size = horizon_units + 1.
  /// The last slot is an overflow bucket: beyond-horizon mutual
  /// segments land there unconditionally, which keeps the collection
  /// loop branch-free (no per-segment horizon test). Consumers iterate
  /// units [0, horizon_units()).
  std::vector<int32_t> count;

  /// Observed incompatible segments per unit; parallel to `count`
  /// (including the overflow slot).
  std::vector<int32_t> incompatible;

  /// Number of informative units (excludes the overflow slot).
  size_t horizon_units() const {
    return count.empty() ? 0 : count.size() - 1;
  }

  /// Sum of `count` (the paper's n).
  int64_t informative = 0;

  /// Sum of `incompatible` (the test statistic K).
  int64_t k_observed = 0;

  /// Total mutual segments including beyond-horizon ones.
  int64_t total_mutual = 0;

  /// Beyond-horizon segments observed incompatible (diagnostics; see
  /// MutualSegmentEvidence).
  int64_t beyond_horizon_incompatible = 0;

  /// Zero-fills for a fresh pair, reusing buffer capacity.
  void Reset(size_t horizon_units);

  /// Writes the Poisson-Binomial trial groups of this evidence under
  /// `model` into `out` (cleared first): one group per occupied unit,
  /// probability looked up once per unit instead of once per segment.
  void GroupsUnder(const CompatibilityModel& model,
                   std::vector<stats::TrialGroup>* out) const;
};

/// Streams the alignment of (p, q) and collects bucket-compacted
/// evidence into `out`, reusing its buffers. The allocation-free
/// counterpart of CollectEvidence for the query hot path.
void CollectEvidence(const traj::Trajectory& p, const traj::Trajectory& q,
                     const EvidenceOptions& options, BucketEvidence* out);

/// SoA overload: streams the evidence straight out of contiguous
/// columns (FlatTrajectoryView) through the runtime-dispatched SIMD
/// kernel table (simd/dispatch.h) — the vectorized counterpart of the
/// AoS merge. Every kernel tier is bit-identical to the scalar AoS
/// path for equal record data (the simd layer's oracle contract), so
/// AoS and SoA results remain byte-identical. `scratch` holds the
/// vector kernels' segment staging buffers; pass one per scoring
/// thread to keep steady state allocation-free (null uses a
/// thread-local).
void CollectEvidence(const traj::FlatTrajectoryView& p,
                     const traj::FlatTrajectoryView& q,
                     const EvidenceOptions& options, BucketEvidence* out,
                     simd::EvidenceScratch* scratch = nullptr);

/// Folds per-segment evidence into the bucket histogram (used by the
/// streaming linker, whose pair state accumulates incrementally).
void CompactEvidence(const MutualSegmentEvidence& ev, size_t horizon_units,
                     BucketEvidence* out);

}  // namespace ftl::core

#endif  // FTL_CORE_EVIDENCE_H_
