#ifndef FTL_CORE_EVIDENCE_H_
#define FTL_CORE_EVIDENCE_H_

/// \file evidence.h
/// Extraction of the classification evidence for a trajectory pair: the
/// time-length bucket and observed compatibility bit of every mutual
/// segment in the alignment W_PQ.
///
/// Both classifiers consume the same evidence, so it is collected once
/// per (P, Q) pair and then scored against each model.

#include <cstdint>
#include <vector>

#include "core/compatibility_model.h"
#include "traj/trajectory.h"

namespace ftl::core {

/// Per-pair mutual-segment observations.
struct MutualSegmentEvidence {
  /// Bucket index (rounded time units) of each informative mutual
  /// segment, i.e. those within the model horizon. Parallel to
  /// `incompatible`.
  std::vector<int32_t> units;

  /// Observed incompatibility bit b_i per informative mutual segment.
  std::vector<uint8_t> incompatible;

  /// Total mutual segments in the alignment including beyond-horizon
  /// ones (those are always compatible by assumption and carry no
  /// signal, but the count is useful diagnostics).
  int64_t total_mutual = 0;

  /// Beyond-horizon segments observed *incompatible* — physically
  /// impossible under a correct horizon; nonzero values indicate the
  /// horizon/Vmax configuration is too tight for the data.
  int64_t beyond_horizon_incompatible = 0;

  /// Number of informative segments.
  size_t size() const { return units.size(); }

  /// Observed number of incompatible informative segments (the test
  /// statistic K).
  int64_t ObservedIncompatible() const;

  /// Per-segment incompatibility probabilities under `model`
  /// (the Poisson-Binomial parameter vector).
  std::vector<double> ProbsUnder(const CompatibilityModel& model) const;
};

/// Parameters of evidence extraction; must match the models' training
/// discretization.
struct EvidenceOptions {
  double vmax_mps = 120.0 * 1000.0 / 3600.0;
  int64_t time_unit_seconds = 60;
  int64_t horizon_units = 60;
};

/// Streams the alignment of (p, q) and collects evidence.
MutualSegmentEvidence CollectEvidence(const traj::Trajectory& p,
                                      const traj::Trajectory& q,
                                      const EvidenceOptions& options);

}  // namespace ftl::core

#endif  // FTL_CORE_EVIDENCE_H_
