#ifndef FTL_CORE_STREAMING_H_
#define FTL_CORE_STREAMING_H_

/// \file streaming.h
/// Online fuzzy linking over live record streams.
///
/// The paper's batch setting assumes both databases are complete. Its
/// motivating applications (disease control, investigations) are really
/// *monitoring* problems: records keep arriving and an analyst watches a
/// few query identities against a population of candidates. The
/// StreamingLinker maintains, for every (watch query, candidate) pair,
/// the incremental mutual-segment evidence of their alignment, so the
/// current classification is available at any moment in O(1) state per
/// pair and O(touched pairs) work per ingested record.
///
/// Correctness invariant: after ingesting any prefix of the merged
/// record streams in non-decreasing time order, each pair's evidence
/// equals CollectEvidence() on the batch prefixes (verified by tests).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evidence.h"
#include "core/model_builders.h"
#include "traj/record.h"
#include "util/status.h"

namespace ftl::core {

/// Which side of the linking problem a streamed record belongs to.
enum class StreamSide : uint8_t {
  kQuery = 0,      ///< the watched P side
  kCandidate = 1,  ///< the population Q side
};

/// Current belief about one (watch, candidate) pair.
struct PairBelief {
  std::string watch_label;
  std::string candidate_label;
  size_t informative_segments = 0;
  int64_t incompatible = 0;
  double p1 = 1.0;     ///< Pr(K >= k | Mr)
  double p2 = 1.0;     ///< Pr(K <= k | Ma)
  double score = 0.0;  ///< Eq. 2 ranking score

  /// Current alpha-filter style decision at the given significance
  /// levels.
  bool Accepted(double alpha1, double alpha2) const {
    return p1 >= alpha1 && p2 < alpha2;
  }
};

/// Incremental linker for a fixed set of watched queries.
class StreamingLinker {
 public:
  /// `models` are copied; evidence discretization comes from `options`.
  StreamingLinker(ModelPair models, EvidenceOptions options);

  /// Registers a watched query identity (the P side). Records for it
  /// are fed via Ingest(kQuery, label, ...). Fails on duplicates.
  Status AddWatch(const std::string& label);

  /// Ingests one record. Records must arrive in non-decreasing global
  /// time order (InvalidArgument otherwise). Candidate labels are
  /// auto-registered on first sight; query labels must have been added
  /// via AddWatch.
  Status Ingest(StreamSide side, const std::string& label,
                const traj::Record& record);

  /// Current belief for one pair; p-values computed on demand.
  /// NotFound if either label is unknown.
  Result<PairBelief> Belief(const std::string& watch_label,
                            const std::string& candidate_label) const;

  /// All current beliefs for a watch, ranked by non-increasing score.
  Result<std::vector<PairBelief>> RankedCandidates(
      const std::string& watch_label) const;

  /// Number of ingested records.
  int64_t ingested() const { return ingested_; }

  /// Known candidate labels in first-seen order.
  const std::vector<std::string>& candidate_labels() const {
    return candidate_labels_;
  }

 private:
  /// Evidence accumulator for one (watch, candidate) pair.
  struct PairState {
    // Last record seen across BOTH streams of this pair, and its side.
    traj::Record last_record;
    StreamSide last_side = StreamSide::kQuery;
    bool has_last = false;
    MutualSegmentEvidence evidence;
  };

  struct WatchState {
    std::string label;
    // candidate index -> pair state
    std::vector<PairState> pairs;
    // Most recent watch record: seeds pair state for candidates that
    // first appear after this watch has already emitted records (their
    // earlier watch records only form self-segments, so only the last
    // one affects future mutual segments).
    traj::Record last_watch_record;
    bool has_watch_record = false;
  };

  /// Reusable buffers for p-value evaluation across a ranking pass.
  struct BeliefScratch {
    BucketEvidence buckets;
    stats::GroupedPbWorkspace pb;
  };

  void TouchPair(PairState* pair, StreamSide side,
                 const traj::Record& record) const;
  PairBelief MakeBelief(const WatchState& watch, size_t cand_idx,
                        BeliefScratch* scratch) const;

  ModelPair models_;
  EvidenceOptions options_;
  std::vector<WatchState> watches_;
  std::unordered_map<std::string, size_t> watch_index_;
  std::vector<std::string> candidate_labels_;
  std::unordered_map<std::string, size_t> candidate_index_;
  int64_t last_time_ = 0;
  bool any_ingested_ = false;
  int64_t ingested_ = 0;
};

}  // namespace ftl::core

#endif  // FTL_CORE_STREAMING_H_
