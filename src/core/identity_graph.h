#ifndef FTL_CORE_IDENTITY_GRAPH_H_
#define FTL_CORE_IDENTITY_GRAPH_H_

/// \file identity_graph.h
/// Multi-source identity resolution — "large-scale fuzzy linking among
/// several sources of trajectory data" (the paper's future work).
///
/// With more than two databases, pairwise FTL links must be reconciled
/// into identity clusters. Links are merged greedily by descending
/// score under the structural constraint that a cluster holds at most
/// one trajectory per source (one person has one card, one phone, ...).
/// Conflicting links — those that would put two same-source
/// trajectories in one cluster — are rejected; transitively consistent
/// links (A≡B, B≡C) merge even if the weak A≡C link was missed, which
/// is precisely the benefit of multi-source linking.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ftl::core {

/// A trajectory in a multi-source setting.
struct SourceRef {
  uint32_t source = 0;  ///< database id (0-based)
  uint32_t index = 0;   ///< trajectory index within that database

  friend bool operator==(const SourceRef& a, const SourceRef& b) {
    return a.source == b.source && a.index == b.index;
  }
};

/// One pairwise FTL link.
struct IdentityLink {
  SourceRef a;
  SourceRef b;
  double score = 0.0;  ///< Eq. 2 score of the accepted pair
};

/// One resolved identity: its member trajectories across sources.
struct IdentityCluster {
  std::vector<SourceRef> members;  ///< sorted by (source, index)
};

/// Accumulates links, then resolves clusters.
class IdentityGraph {
 public:
  /// `num_sources` databases with the given trajectory counts.
  explicit IdentityGraph(std::vector<size_t> source_sizes);

  /// Adds a link. InvalidArgument on out-of-range refs, same-source
  /// links, or self links.
  Status AddLink(const SourceRef& a, const SourceRef& b, double score);

  /// Number of accumulated links.
  size_t num_links() const { return links_.size(); }

  /// Resolves identities: merges links with score >= min_score in
  /// descending score order, skipping merges that would violate the
  /// one-per-source constraint. Returns clusters with >= 2 members
  /// (singletons are not identities).
  std::vector<IdentityCluster> Resolve(double min_score = 0.0) const;

  /// Number of links skipped as conflicting during the last Resolve.
  size_t last_conflicts() const { return last_conflicts_; }

 private:
  size_t FlatIndex(const SourceRef& r) const;

  std::vector<size_t> source_sizes_;
  std::vector<size_t> source_offsets_;
  size_t total_ = 0;
  std::vector<IdentityLink> links_;
  mutable size_t last_conflicts_ = 0;
};

}  // namespace ftl::core

#endif  // FTL_CORE_IDENTITY_GRAPH_H_
