#ifndef FTL_CORE_MODEL_BUILDERS_H_
#define FTL_CORE_MODEL_BUILDERS_H_

/// \file model_builders.h
/// Training of the rejection model (paper Algorithm 1) and the
/// acceptance model (paper Algorithm 2).

#include <cstdint>

#include "core/compatibility_model.h"
#include "traj/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace ftl::core {

/// Options shared by both model builders.
struct ModelTrainingOptions {
  /// Maximum plausible travel speed (the paper's Vmax), m/s.
  /// Default 120 kph — the paper's experimental setting.
  double vmax_mps = 120.0 * 1000.0 / 3600.0;

  /// Discretization unit for mutual-segment time lengths, seconds
  /// ("such as half, one, or two minutes").
  int64_t time_unit_seconds = 60;

  /// Buckets beyond this index are treated as always-compatible
  /// (probability 0). 60 one-minute units ≈ "all mutual segments more
  /// than one hour long are compatible".
  int64_t horizon_units = 60;

  /// Additive (Laplace) smoothing weight per bucket:
  /// p = (incompat + alpha) / (total + 2 alpha). 0 disables smoothing.
  double laplace_alpha = 0.5;

  /// Acceptance model only: number of random different-person alignment
  /// pairs drawn per database. Algorithm 2 as written is quadratic in
  /// |DB|; sampling this many pairs gives an unbiased estimate of the
  /// same statistics.
  size_t acceptance_pairs_per_db = 2000;

  /// Seed for the acceptance-model pair sampler.
  uint64_t seed = 7;
};

/// Builds the rejection model M̂r (Algorithm 1): every *self*-segment of
/// every individual trajectory in P ∪ Q is treated as a mutual segment of
/// a same-person alignment, and per-bucket incompatibility frequencies
/// are tabulated.
Result<CompatibilityModel> BuildRejectionModel(
    const traj::TrajectoryDatabase& p, const traj::TrajectoryDatabase& q,
    const ModelTrainingOptions& options);

/// Builds the acceptance model M̂a (Algorithm 2): aligns pairs of
/// *distinct* trajectories within the same database (different persons
/// with high probability) and tabulates mutual-segment incompatibility
/// frequencies. Pairs are sampled uniformly without replacement up to
/// `options.acceptance_pairs_per_db` per database.
Result<CompatibilityModel> BuildAcceptanceModel(
    const traj::TrajectoryDatabase& p, const traj::TrajectoryDatabase& q,
    const ModelTrainingOptions& options);

/// Trained model pair.
struct ModelPair {
  CompatibilityModel rejection;
  CompatibilityModel acceptance;
};

/// Convenience: trains both models with the same options.
Result<ModelPair> BuildModels(const traj::TrajectoryDatabase& p,
                              const traj::TrajectoryDatabase& q,
                              const ModelTrainingOptions& options);

}  // namespace ftl::core

#endif  // FTL_CORE_MODEL_BUILDERS_H_
