#include "core/identity_graph.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace ftl::core {

namespace {

/// Union-find with per-root source bitsets (as sorted vectors, since
/// source counts are small).
class ClusterSets {
 public:
  explicit ClusterSets(size_t n) : parent_(n), source_of_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
    sources_.resize(n);
  }

  void InitNode(size_t i, uint32_t source) {
    source_of_[i] = source;
    sources_[i] = {source};
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the clusters of a and b unless they share a source.
  /// Returns false (and leaves state unchanged) on conflict.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return true;  // already together: consistent
    // Conflict check: intersect source sets.
    const auto& sa = sources_[ra];
    const auto& sb = sources_[rb];
    for (uint32_t s : sa) {
      if (std::binary_search(sb.begin(), sb.end(), s)) return false;
    }
    // Merge smaller into larger.
    size_t big = sa.size() >= sb.size() ? ra : rb;
    size_t small = big == ra ? rb : ra;
    std::vector<uint32_t> merged;
    merged.reserve(sources_[big].size() + sources_[small].size());
    std::merge(sources_[big].begin(), sources_[big].end(),
               sources_[small].begin(), sources_[small].end(),
               std::back_inserter(merged));
    parent_[small] = big;
    sources_[big] = std::move(merged);
    sources_[small].clear();
    return true;
  }

 private:
  std::vector<size_t> parent_;
  std::vector<uint32_t> source_of_;
  std::vector<std::vector<uint32_t>> sources_;
};

}  // namespace

IdentityGraph::IdentityGraph(std::vector<size_t> source_sizes)
    : source_sizes_(std::move(source_sizes)) {
  source_offsets_.reserve(source_sizes_.size());
  for (size_t n : source_sizes_) {
    source_offsets_.push_back(total_);
    total_ += n;
  }
}

size_t IdentityGraph::FlatIndex(const SourceRef& r) const {
  return source_offsets_[r.source] + r.index;
}

Status IdentityGraph::AddLink(const SourceRef& a, const SourceRef& b,
                              double score) {
  if (a.source >= source_sizes_.size() || b.source >= source_sizes_.size()) {
    return Status::InvalidArgument("source id out of range");
  }
  if (a.index >= source_sizes_[a.source] ||
      b.index >= source_sizes_[b.source]) {
    return Status::InvalidArgument("trajectory index out of range");
  }
  if (a.source == b.source) {
    return Status::InvalidArgument(
        "links must connect different sources (one person has one "
        "trajectory per source)");
  }
  links_.push_back(IdentityLink{a, b, score});
  return Status::OK();
}

std::vector<IdentityCluster> IdentityGraph::Resolve(double min_score) const {
  std::vector<IdentityLink> sorted = links_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const IdentityLink& x, const IdentityLink& y) {
                     return x.score > y.score;
                   });
  ClusterSets sets(total_);
  for (uint32_t s = 0; s < source_sizes_.size(); ++s) {
    for (uint32_t i = 0; i < source_sizes_[s]; ++i) {
      sets.InitNode(source_offsets_[s] + i, s);
    }
  }
  last_conflicts_ = 0;
  for (const auto& link : sorted) {
    if (link.score < min_score) break;
    if (!sets.Union(FlatIndex(link.a), FlatIndex(link.b))) {
      ++last_conflicts_;
    }
  }
  // Collect clusters.
  std::map<size_t, IdentityCluster> by_root;
  for (uint32_t s = 0; s < source_sizes_.size(); ++s) {
    for (uint32_t i = 0; i < source_sizes_[s]; ++i) {
      size_t flat = source_offsets_[s] + i;
      by_root[sets.Find(flat)].members.push_back(SourceRef{s, i});
    }
  }
  std::vector<IdentityCluster> out;
  for (auto& [root, cluster] : by_root) {
    if (cluster.members.size() < 2) continue;
    std::sort(cluster.members.begin(), cluster.members.end(),
              [](const SourceRef& x, const SourceRef& y) {
                return x.source != y.source ? x.source < y.source
                                            : x.index < y.index;
              });
    out.push_back(std::move(cluster));
  }
  return out;
}

}  // namespace ftl::core
