#ifndef FTL_CORE_BLOCKING_H_
#define FTL_CORE_BLOCKING_H_

/// \file blocking.h
/// Sublinear candidate generation for large-scale fuzzy linking.
///
/// The paper's algorithms compare a query against *every* candidate —
/// fine at 15k trajectories, prohibitive at millions. Blocking is the
/// record-linkage community's standard answer (Christen, TKDE'12, cited
/// by the paper; SLIM, arXiv:2004.05951): cheaply prune candidates that
/// cannot plausibly match, then run the expensive classifier on the
/// survivors.
///
/// The index is built once per candidate database and answers each
/// query in time proportional to the query's spatiotemporal footprint
/// plus the result size — it never scans the candidate list. Three
/// structures, all CSR-flattened inverted lists:
///
///  * **time-bucket occupancy** — per coarse epoch bucket, the
///    candidates with ≥1 record in the bucket and their record counts.
///    Drives the *guaranteed* mode: an upper bound on the number of
///    informative mutual segments a candidate can contribute (see
///    BlockingGuarantee) that is provably no stricter than the
///    classifiers' own accept conditions, so engine accept sets stay
///    byte-identical to exhaustive scoring.
///  * **time-bucket span lists** — per bucket, the candidates whose
///    [min t, max t] span covers the bucket (candidates spanning very
///    many buckets go to a small always-checked overflow list).
///    Drives the legacy/aggressive temporal span-overlap filter; probe
///    hits are refined with the exact span predicate, so results equal
///    the old full-scan semantics.
///  * **spatial cell lists** — per coarse grid cell, the candidates
///    visiting it. Drives the aggressive co-visitation filter
///    (neighborhood expansion absorbs noise and channel offset).
///
/// Aggressive mode trades a little recall for a large candidate-set
/// reduction; guaranteed mode trades nothing (bench_blocking
/// quantifies both).

#include <cstdint>
#include <string_view>
#include <vector>

#include "traj/database.h"
#include "traj/flat_database.h"
#include "util/status.h"

namespace ftl::core {

/// How a query pipeline uses a BlockingIndex.
enum class BlockingMode {
  kOff,         ///< exhaustive: score every candidate
  kGuaranteed,  ///< prune only provably unacceptable candidates
  kAggressive,  ///< span-overlap + co-visitation heuristics (recall < 1)
};

/// Stable lower-case name ("off" / "guaranteed" / "aggressive").
const char* BlockingModeName(BlockingMode mode);

/// Parses a BlockingModeName; InvalidArgument on anything else.
Result<BlockingMode> ParseBlockingMode(std::string_view name);

/// Blocking configuration.
struct BlockingOptions {
  /// Aggressive mode: require time-span overlap within this slack
  /// (seconds).
  bool use_temporal = true;
  int64_t temporal_slack_seconds = 6 * 3600;

  /// Aggressive mode: require at least `min_shared_cells` coarse grid
  /// cells in common after expanding each query cell by `neighborhood`
  /// rings. min_shared_cells == 0 disables the spatial filter.
  bool use_spatial = true;
  double cell_size_meters = 3000.0;
  int neighborhood = 1;
  size_t min_shared_cells = 1;

  /// Width of the coarse epoch buckets backing both temporal
  /// structures (seconds). Pure performance knob: results are
  /// identical for any positive value. Smaller buckets probe more
  /// lists but touch fewer false candidates.
  int64_t time_bucket_seconds = 3600;

  /// Sanity check: cell size positive and finite, slack non-negative,
  /// bucket width positive, neighborhood in [0, 16] (a ring expansion
  /// is (2n+1)² probes per query cell). The BlockingIndex constructor
  /// clamps invalid values to safe defaults; call Validate() first
  /// where a user-supplied configuration should be rejected instead.
  Status Validate() const;
};

/// The accept-preserving contract of guaranteed mode, derived from the
/// trained models by FtlEngine::DeriveBlockingGuarantee.
///
/// Guarantee argument (DESIGN.md §13): both classifiers accept a
/// candidate only if the pair has at least `min_segments` informative
/// mutual segments. A mutual segment pairs records adjacent in the
/// time-merged order, so each candidate record participates in at most
/// two segments, and an informative segment keeps its two records
/// within `horizon_seconds` of each other. Hence with m = number of
/// candidate records within `horizon_seconds` of some query record,
/// the informative segment count n satisfies n <= 2m. The index upper
/// bounds m by bucket co-occurrence (counting whole buckets within
/// ceil(horizon/bucket) rings of the query's occupied buckets) and
/// keeps every candidate with 2·m̂ >= min_segments — a superset of the
/// candidates any accept path (including the Chernoff fast-reject
/// survivors) can accept, for any bucket width.
struct BlockingGuarantee {
  /// Upper bound on the time distance (seconds) between the two
  /// records of an informative mutual segment.
  int64_t horizon_seconds = 3600;

  /// Minimum informative mutual segments any accepted candidate must
  /// have. 0 means "cannot prune": the accept criterion does not
  /// require evidence (e.g. Naïve Bayes with φr >= 0.5), and
  /// guaranteed mode returns every candidate.
  uint64_t min_segments = 1;
};

/// Caller-owned scratch for Candidates()/GuaranteedCandidates():
/// generation-stamped per-candidate accumulators plus probe staging,
/// reused across queries (and across BlockingIndex instances — buffers
/// are re-sized per call) so a steady-state query loop allocates
/// nothing. One instance per thread; never shared concurrently.
/// Mirrors the engine's per-thread ScoreScratch.
struct BlockingScratch {
  std::vector<uint32_t> stamp;    ///< per-candidate generation stamp
  std::vector<uint32_t> count;    ///< valid iff stamp[i] == generation
  std::vector<uint32_t> touched;  ///< candidates touched this query
  std::vector<int64_t> keys;      ///< probe cell/bucket staging
  uint32_t generation = 0;
};

/// Precomputed index over a candidate database. Build once per
/// database; the backing database contents are not referenced after
/// construction.
class BlockingIndex {
 public:
  /// Builds the index over an AoS database. Invalid options are
  /// clamped (see BlockingOptions::Validate). Candidate spans are
  /// computed as true min/max over records, so inputs that violate the
  /// sorted-trajectory invariant still index correctly.
  BlockingIndex(const traj::TrajectoryDatabase& db,
                const BlockingOptions& options);

  /// SoA build path: streams the timestamp/x/y columns directly (e.g.
  /// an mmap'd FTB segment); no per-record indirection.
  BlockingIndex(const traj::FlatDatabase& db, const BlockingOptions& options);

  /// Aggressive mode: indices of candidates surviving all enabled
  /// blockers, ascending. The scratch overloads are the hot path; the
  /// allocating overloads are conveniences for tests and one-shot
  /// callers (`out`-only overload kept for source compatibility — it
  /// builds a scratch per call).
  void Candidates(const traj::Trajectory& query, BlockingScratch* scratch,
                  std::vector<size_t>* out) const;
  void Candidates(const traj::FlatTrajectoryView& query,
                  BlockingScratch* scratch, std::vector<size_t>* out) const;
  std::vector<size_t> Candidates(const traj::Trajectory& query) const;
  std::vector<size_t> Candidates(const traj::FlatTrajectoryView& query) const;
  void Candidates(const traj::Trajectory& query,
                  std::vector<size_t>* out) const;

  /// Guaranteed mode: indices (ascending) of every candidate whose
  /// co-occurrence upper bound allows >= guarantee.min_segments
  /// informative mutual segments with the query. Never drops a
  /// candidate either classifier could accept (see BlockingGuarantee),
  /// so engine accept sets over the survivors are byte-identical to
  /// exhaustive scoring. Ignores use_temporal/use_spatial: the filter
  /// is purely temporal (an informative segment already tolerates
  /// vmax·horizon of travel — tens of kilometres at defaults — so no
  /// spatial test can be both useful and safe; DESIGN.md §13).
  void GuaranteedCandidates(const traj::Trajectory& query,
                            const BlockingGuarantee& guarantee,
                            BlockingScratch* scratch,
                            std::vector<size_t>* out) const;
  void GuaranteedCandidates(const traj::FlatTrajectoryView& query,
                            const BlockingGuarantee& guarantee,
                            BlockingScratch* scratch,
                            std::vector<size_t>* out) const;

  /// Number of indexed candidates.
  size_t size() const { return num_candidates_; }

  /// Wall-clock build time, microseconds (also recorded to
  /// ftl_blocking_index_build_us).
  int64_t build_micros() const { return build_micros_; }

  const BlockingOptions& options() const { return options_; }

 private:
  /// One CSR-flattened inverted index: sorted unique keys (cell ids or
  /// bucket ids), offsets, and per-key entry rows.
  struct PostingLists {
    std::vector<int64_t> keys;     // sorted, unique
    std::vector<uint32_t> begin;   // keys.size() + 1 offsets
    std::vector<uint32_t> entry;   // candidate id per posting
    std::vector<uint32_t> weight;  // record count per posting (occupancy)
  };

  static int64_t CellKey(int32_t cx, int32_t cy) {
    return (static_cast<int64_t>(cx) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(cy));
  }

  template <typename DbT>
  void Build(const DbT& db);

  template <typename QueryT>
  void CandidatesImpl(const QueryT& query, BlockingScratch* scratch,
                      std::vector<size_t>* out) const;

  template <typename QueryT>
  void GuaranteedImpl(const QueryT& query, const BlockingGuarantee& guarantee,
                      BlockingScratch* scratch,
                      std::vector<size_t>* out) const;

  /// Accumulates spatial shared-cell counts for `query` into the
  /// scratch (stamp = current generation); probe cells are the
  /// neighborhood expansion of the query's clamped grid cells.
  template <typename QueryT>
  void AccumulateSharedCells(const QueryT& query,
                             BlockingScratch* scratch) const;

  /// True when the candidate span overlaps [q_lo, q_hi].
  bool SpanOverlaps(uint32_t cand, int64_t q_lo, int64_t q_hi) const {
    const auto& s = spans_[cand];
    return s.first <= s.second && s.second >= q_lo && s.first <= q_hi;
  }

  size_t num_candidates_ = 0;
  BlockingOptions options_;
  int64_t build_micros_ = 0;

  /// Exact [min t, max t] per candidate; (1, 0) for empty candidates.
  std::vector<std::pair<int64_t, int64_t>> spans_;

  PostingLists occupancy_;  ///< bucket -> (candidate, record count)
  PostingLists span_;       ///< bucket -> candidates whose span covers it
  std::vector<uint32_t> span_overflow_;  ///< very-long-span candidates
  PostingLists cells_;      ///< grid cell -> candidates visiting it
};

}  // namespace ftl::core

#endif  // FTL_CORE_BLOCKING_H_
