#ifndef FTL_CORE_BLOCKING_H_
#define FTL_CORE_BLOCKING_H_

/// \file blocking.h
/// Candidate blocking for large-scale fuzzy linking.
///
/// The paper's algorithms compare a query against *every* candidate —
/// fine at 15k trajectories, prohibitive at millions. Blocking is the
/// record-linkage community's standard answer (Christen, TKDE'12, cited
/// by the paper): cheaply prune candidates that cannot plausibly match,
/// then run the expensive classifier on the survivors.
///
/// Two complementary blockers:
///  * **temporal** — a same-person pair needs informative mutual
///    segments, which require overlapping (or nearly overlapping) time
///    spans;
///  * **spatial co-visitation** — two channels observing one person
///    visit the same places; candidates sharing no coarse grid cell
///    with the query (after a neighborhood expansion that absorbs noise
///    and channel offset) are extremely unlikely true matches.
///
/// Blocking trades a little recall for a large candidate-set reduction;
/// bench_blocking quantifies the trade-off.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "traj/database.h"

namespace ftl::core {

/// Blocking configuration.
struct BlockingOptions {
  /// Require time-span overlap within this slack (seconds).
  bool use_temporal = true;
  int64_t temporal_slack_seconds = 6 * 3600;

  /// Require at least `min_shared_cells` coarse grid cells in common
  /// after expanding each query cell by `neighborhood` rings.
  bool use_spatial = true;
  double cell_size_meters = 3000.0;
  int neighborhood = 1;
  size_t min_shared_cells = 1;
};

/// Precomputed index over a candidate database.
///
/// Build once per database; Candidates() answers each query in time
/// proportional to the query's footprint plus the result size.
class BlockingIndex {
 public:
  /// Builds the index. `db` must outlive the index.
  BlockingIndex(const traj::TrajectoryDatabase& db,
                const BlockingOptions& options);

  /// Indices of candidates surviving all enabled blockers, ascending.
  std::vector<size_t> Candidates(const traj::Trajectory& query) const;

  /// Scratch-buffer variant: clears and fills `*out` instead of
  /// allocating, so a caller looping over queries reuses the vector's
  /// capacity (and the internal count buffer's) across calls. Not
  /// thread-safe with a shared `out`; use one buffer per thread.
  void Candidates(const traj::Trajectory& query,
                  std::vector<size_t>* out) const;

  /// Number of indexed candidates.
  size_t size() const { return spans_.size(); }

  const BlockingOptions& options() const { return options_; }

 private:
  static int64_t CellKey(int32_t cx, int32_t cy) {
    return (static_cast<int64_t>(cx) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(cy));
  }

  const traj::TrajectoryDatabase& db_;
  BlockingOptions options_;
  std::vector<std::pair<int64_t, int64_t>> spans_;  // [first, last] per cand
  std::unordered_map<int64_t, std::vector<uint32_t>> cell_to_candidates_;
};

}  // namespace ftl::core

#endif  // FTL_CORE_BLOCKING_H_
