#include "core/engine.h"

#include <algorithm>

#include "stats/poisson_binomial.h"
#include "traj/alignment.h"
#include "util/thread_pool.h"

namespace ftl::core {

FtlEngine::FtlEngine(EngineOptions options) : options_(std::move(options)) {}

Status FtlEngine::Train(const traj::TrajectoryDatabase& p,
                        const traj::TrajectoryDatabase& q) {
  auto models = BuildModels(p, q, options_.training);
  if (!models.ok()) return models.status();
  models_ = std::move(models).value();
  trained_ = true;
  return Status::OK();
}

void FtlEngine::SetModels(ModelPair models) {
  models_ = std::move(models);
  trained_ = true;
}

EvidenceOptions FtlEngine::evidence_options() const {
  EvidenceOptions ev;
  ev.vmax_mps = options_.training.vmax_mps;
  ev.time_unit_seconds = options_.training.time_unit_seconds;
  ev.horizon_units = options_.training.horizon_units;
  return ev;
}

bool FtlEngine::ScorePair(const traj::Trajectory& query,
                          const traj::Trajectory& cand, Matcher matcher,
                          MatchCandidate* out) const {
  MutualSegmentEvidence ev = CollectEvidence(query, cand, evidence_options());
  out->k_observed = ev.ObservedIncompatible();
  out->n_segments = ev.size();

  // p-values (quadratic Poisson-Binomial tails) are computed lazily:
  // the rejection-phase p1 always gates the alpha filter, but p2 — and,
  // for Naive-Bayes, both p-values — are only needed for candidates that
  // enter Q_P, where they drive the Eq. 2 ranking (paper Section V
  // applies the same score to NB candidates). This is what makes NB the
  // faster matcher (paper Figure 7): its per-pair cost is a linear-time
  // likelihood, not a quadratic tail evaluation.
  auto fill_pvalues = [this, &ev, out]() {
    stats::PoissonBinomial reject_dist(ev.ProbsUnder(models_.rejection));
    out->p1 = reject_dist.UpperTailPValue(out->k_observed);
    stats::PoissonBinomial accept_dist(ev.ProbsUnder(models_.acceptance));
    out->p2 = accept_dist.LowerTailPValue(out->k_observed);
    out->score = out->p1 * (1.0 - out->p2);
  };

  switch (matcher) {
    case Matcher::kAlphaFilter: {
      stats::PoissonBinomial reject_dist(ev.ProbsUnder(models_.rejection));
      out->p1 = reject_dist.UpperTailPValue(out->k_observed);
      if (out->p1 < options_.alpha.alpha1) return false;
      stats::PoissonBinomial accept_dist(ev.ProbsUnder(models_.acceptance));
      out->p2 = accept_dist.LowerTailPValue(out->k_observed);
      out->score = out->p1 * (1.0 - out->p2);
      return out->p2 < options_.alpha.alpha2;
    }
    case Matcher::kNaiveBayes: {
      NaiveBayesMatcher nb(models_, options_.naive_bayes);
      NaiveBayesDecision d = nb.Classify(ev);
      out->nb_log_odds = d.LogOdds();
      if (!d.same_person) return false;
      fill_pvalues();
      return true;
    }
  }
  return false;
}

Result<QueryResult> FtlEngine::Query(const traj::Trajectory& query,
                                     const traj::TrajectoryDatabase& db,
                                     Matcher matcher) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::Query before Train");
  }
  if (db.empty()) {
    return Status::InvalidArgument("candidate database is empty");
  }
  QueryResult result;
  for (size_t i = 0; i < db.size(); ++i) {
    const traj::Trajectory& cand = db[i];
    if (!options_.evaluate_non_overlapping &&
        traj::TimeSpanOverlapSeconds(query, cand) == 0) {
      continue;
    }
    MatchCandidate mc;
    mc.index = i;
    if (ScorePair(query, cand, matcher, &mc)) {
      mc.label = cand.label();
      result.candidates.push_back(std::move(mc));
    }
  }
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const MatchCandidate& a, const MatchCandidate& b) {
                     return a.score > b.score;
                   });
  result.selectiveness = static_cast<double>(result.candidates.size()) /
                         static_cast<double>(db.size());
  return result;
}

Result<QueryResult> FtlEngine::QueryWithCandidates(
    const traj::Trajectory& query, const traj::TrajectoryDatabase& db,
    const std::vector<size_t>& candidate_indices, Matcher matcher) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "FtlEngine::QueryWithCandidates before Train");
  }
  if (db.empty()) {
    return Status::InvalidArgument("candidate database is empty");
  }
  QueryResult result;
  for (size_t i : candidate_indices) {
    if (i >= db.size()) {
      return Status::OutOfRange("candidate index " + std::to_string(i) +
                                " out of range for database of size " +
                                std::to_string(db.size()));
    }
    MatchCandidate mc;
    mc.index = i;
    if (ScorePair(query, db[i], matcher, &mc)) {
      mc.label = db[i].label();
      result.candidates.push_back(std::move(mc));
    }
  }
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const MatchCandidate& a, const MatchCandidate& b) {
                     return a.score > b.score;
                   });
  result.selectiveness = static_cast<double>(result.candidates.size()) /
                         static_cast<double>(db.size());
  return result;
}

Result<std::vector<QueryResult>> FtlEngine::BatchQuery(
    const std::vector<traj::Trajectory>& queries,
    const traj::TrajectoryDatabase& db, Matcher matcher) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::BatchQuery before Train");
  }
  std::vector<QueryResult> results(queries.size());
  std::vector<Status> statuses(queries.size());
  ParallelFor(queries.size(), options_.num_threads, [&](size_t i) {
    auto r = Query(queries[i], db, matcher);
    if (r.ok()) {
      results[i] = std::move(r).value();
    } else {
      statuses[i] = r.status();
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return results;
}

}  // namespace ftl::core
