#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "obs/metrics.h"
#include "stats/grouped_poisson_binomial.h"
#include "traj/alignment.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftl::core {

namespace {

/// Every kStageSampleEvery-th pair per scratch stream pays the stage
/// stopwatches (6-8 clock reads); the rest pay only local integer
/// tallies. Power of two so the modulo is a mask.
constexpr uint32_t kStageSampleEvery = 64;

/// Candidates per ScorePairBatch call on the unlimited query paths:
/// large enough to amortize per-batch setup (classifier views, metric
/// handles, SIMD dispatch) to noise, small enough that the stack
/// staging arrays stay cache-resident.
constexpr size_t kScoreBatchSize = 64;

/// Named obs handles, resolved once per process (registry lookups are
/// mutex-guarded and must stay off the per-query path).
struct EngineMetrics {
  obs::Counter* queries;
  obs::Counter* truncated_deadline;
  obs::Counter* truncated_cancel;
  obs::Counter* candidates;
  obs::Counter* accepted;
  obs::Counter* fast_rejects;
  obs::Counter* exact_tails;
  obs::Counter* rna_tails;
  obs::Counter* batch_pairs;
  obs::Histogram* query_latency_us;
  obs::Histogram* stage_alignment_ns;
  obs::Histogram* stage_bucketing_ns;
  obs::Histogram* stage_tail_ns;
  obs::Histogram* stage_decision_ns;
};

const EngineMetrics& Metrics() {
  static const EngineMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    EngineMetrics em;
    em.queries = &r.GetCounter("ftl_query_total");
    em.truncated_deadline =
        &r.GetCounter("ftl_query_truncated_total{reason=\"deadline\"}");
    em.truncated_cancel =
        &r.GetCounter("ftl_query_truncated_total{reason=\"cancelled\"}");
    em.candidates = &r.GetCounter("ftl_query_candidates_total");
    em.accepted = &r.GetCounter("ftl_query_accepted_total");
    em.fast_rejects = &r.GetCounter("ftl_query_fast_reject_total");
    em.exact_tails = &r.GetCounter("ftl_query_tail_exact_total");
    em.rna_tails = &r.GetCounter("ftl_query_tail_rna_total");
    em.batch_pairs = &r.GetCounter("ftl_score_batch_pairs_total");
    em.query_latency_us = &r.GetHistogram("ftl_query_latency_us");
    em.stage_alignment_ns = &r.GetHistogram("ftl_stage_alignment_ns");
    em.stage_bucketing_ns = &r.GetHistogram("ftl_stage_bucketing_ns");
    em.stage_tail_ns = &r.GetHistogram("ftl_stage_tail_ns");
    em.stage_decision_ns = &r.GetHistogram("ftl_stage_decision_ns");
    return em;
  }();
  return m;
}

}  // namespace

Status QueryOptions::Check() const {
  if (cancel.cancel_requested()) {
    return Status::Cancelled("query cancelled by caller");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

FtlEngine::FtlEngine(EngineOptions options) : options_(std::move(options)) {}

Status FtlEngine::Train(const traj::TrajectoryDatabase& p,
                        const traj::TrajectoryDatabase& q) {
  FTL_FAILPOINT("core.train");
  auto models = BuildModels(p, q, options_.training);
  if (!models.ok()) return models.status();
  models_ = std::move(models).value();
  trained_ = true;
  return Status::OK();
}

void FtlEngine::SetModels(ModelPair models) {
  models_ = std::move(models);
  // Models arriving from outside (typically a file) may carry buckets
  // the training data never covered; backfill them so queries over
  // unseen time gaps degrade gracefully instead of scoring against a
  // hard zero. No-op for freshly trained models: the trainer already
  // fills every bucket.
  models_.rejection.RepairUnsupportedBuckets();
  models_.acceptance.RepairUnsupportedBuckets();
  trained_ = true;
}

EvidenceOptions FtlEngine::evidence_options() const {
  EvidenceOptions ev;
  ev.vmax_mps = options_.training.vmax_mps;
  ev.time_unit_seconds = options_.training.time_unit_seconds;
  ev.horizon_units = options_.training.horizon_units;
  return ev;
}

namespace {

/// Evidence collection entry of the scoring hot path: the SoA overload
/// threads the per-thread kernel scratch through to the vector
/// kernels; the AoS overload has no use for it (that path stays on the
/// layout-generic scalar kernel, the byte-identity oracle).
inline void CollectEvidenceDispatch(const traj::Trajectory& q,
                                    const traj::Trajectory& c,
                                    const EvidenceOptions& opts,
                                    BucketEvidence* out,
                                    simd::EvidenceScratch* /*scratch*/) {
  CollectEvidence(q, c, opts, out);
}

inline void CollectEvidenceDispatch(const traj::FlatTrajectoryView& q,
                                    const traj::FlatTrajectoryView& c,
                                    const EvidenceOptions& opts,
                                    BucketEvidence* out,
                                    simd::EvidenceScratch* scratch) {
  CollectEvidence(q, c, opts, out, scratch);
}

/// Warms the next batch slot's candidate while the current pair
/// scores. Streaming a database larger than L1 otherwise starts every
/// pair with demand misses down the candidate's columns — a cost the
/// alignment merge then eats serially.
inline void PrefetchSpan(const void* p, size_t bytes) {
  const char* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/3);
  }
}

inline void PrefetchCandidate(const traj::Trajectory& t) {
  PrefetchSpan(t.records().data(), t.records().size() * sizeof(traj::Record));
}

inline void PrefetchCandidate(const traj::FlatTrajectoryView& v) {
  PrefetchSpan(v.ts(), v.size() * sizeof(int64_t));
  PrefetchSpan(v.xs(), v.size() * sizeof(double));
  PrefetchSpan(v.ys(), v.size() * sizeof(double));
}

}  // namespace

template <typename QueryT, typename CandT>
bool FtlEngine::ScoreOne(const QueryT& query, const CandT& cand,
                         Matcher matcher, const EvidenceOptions& ev_opts,
                         const AlphaFilter& filter, const NaiveBayesMatcher& nb,
                         MatchCandidate* out, ScoreScratch* scratch) const {
  // Stage timers are sampled (1 in kStageSampleEvery pairs, always
  // including the first of a stream) so per-stage attribution costs a
  // fraction of a clock read per pair amortized; counters are plain
  // local increments flushed once per query. Neither touches the
  // computation, so results are byte-identical with metrics on.
  const bool sampled =
      (scratch->sample_tick++ & (kStageSampleEvery - 1)) == 0;
  ++scratch->n_candidates;
  int64_t alignment_ns = 0;
  if (sampled) {
    Stopwatch sw;
    CollectEvidenceDispatch(query, cand, ev_opts, &scratch->evidence,
                            &scratch->ev_scratch);
    alignment_ns = static_cast<int64_t>(sw.ElapsedSeconds() * 1e9);
  } else {
    CollectEvidenceDispatch(query, cand, ev_opts, &scratch->evidence,
                            &scratch->ev_scratch);
  }
  const BucketEvidence& ev = scratch->evidence;
  stats::GroupedPbWorkspace& ws = scratch->pb;
  out->k_observed = ev.k_observed;
  out->n_segments = static_cast<size_t>(ev.informative);

  // Grouped Poisson-Binomial tails are computed lazily: the
  // rejection-phase p1 always gates the alpha filter, but p2 — and,
  // for Naive-Bayes, both p-values — are only needed for candidates
  // that enter Q_P, where they drive the Eq. 2 ranking (paper
  // Section V applies the same score to NB candidates).
  auto fill_pvalues = [this, &ev, &ws, out, scratch]() {
    ev.GroupsUnder(models_.rejection, &ws.groups);
    stats::GroupedTails rej = stats::GroupedPoissonBinomialTails(
        ws.groups, out->k_observed, options_.alpha.tail, &ws);
    out->p1 = rej.upper;
    ev.GroupsUnder(models_.acceptance, &ws.groups);
    stats::GroupedTails acc = stats::GroupedPoissonBinomialTails(
        ws.groups, out->k_observed, options_.alpha.tail, &ws);
    out->p2 = acc.lower;
    out->score = out->p1 * (1.0 - out->p2);
    if (rej.exact && acc.exact) {
      ++scratch->n_exact_tail;
    } else {
      ++scratch->n_rna_tail;
    }
  };

  switch (matcher) {
    case Matcher::kAlphaFilter: {
      // Single implementation of the two-phase test (Chernoff–KL
      // fast-reject, truncated exact tails, lazy p2) lives in
      // AlphaFilter; the filter view is constructed once per batch by
      // the caller.
      AlphaFilterDecision decision;
      if (sampled) {
        AlphaFilterStageTimes st;
        Stopwatch sw;
        decision = filter.Classify(ev, &ws, &st);
        int64_t total_ns =
            static_cast<int64_t>(sw.ElapsedSeconds() * 1e9);
        const EngineMetrics& em = Metrics();
        em.stage_alignment_ns->Record(alignment_ns);
        em.stage_bucketing_ns->Record(st.bucketing_ns);
        em.stage_tail_ns->Record(st.tail_ns);
        em.stage_decision_ns->Record(
            std::max<int64_t>(0, total_ns - st.bucketing_ns - st.tail_ns));
      } else {
        decision = filter.Classify(ev, &ws);
      }
      if (decision.fast_rejected) {
        ++scratch->n_fast_reject;
      } else if (decision.used_rna) {
        ++scratch->n_rna_tail;
      } else {
        ++scratch->n_exact_tail;
      }
      out->p1 = decision.p1;
      out->p2 = decision.p2;
      out->score = decision.Score();
      return decision.accepted;
    }
    case Matcher::kNaiveBayes: {
      if (sampled) {
        // NB has no grouped-kernel stage split; its whole
        // classification (plus the lazy p-value fill for accepted
        // candidates) is attributed to the decision stage.
        Stopwatch sw;
        NaiveBayesDecision d = nb.Classify(ev);
        out->nb_log_odds = d.LogOdds();
        bool same = d.same_person;
        if (same) fill_pvalues();
        const EngineMetrics& em = Metrics();
        em.stage_alignment_ns->Record(alignment_ns);
        em.stage_decision_ns->Record(
            static_cast<int64_t>(sw.ElapsedSeconds() * 1e9));
        return same;
      }
      NaiveBayesDecision d = nb.Classify(ev);
      out->nb_log_odds = d.LogOdds();
      if (!d.same_person) return false;
      fill_pvalues();
      return true;
    }
  }
  return false;
}

template <typename QueryT, typename CandT>
bool FtlEngine::ScorePair(const QueryT& query, const CandT& cand,
                          Matcher matcher, MatchCandidate* out,
                          ScoreScratch* scratch) const {
  // Both classifier views are thin model wrappers; constructing them
  // per pair is cheap, just not free — the batch entry point below
  // hoists them once per kScoreBatchSize pairs instead.
  const EvidenceOptions ev_opts = evidence_options();
  const AlphaFilter filter(models_, options_.alpha);
  const NaiveBayesMatcher nb(models_, options_.naive_bayes);
  return ScoreOne(query, cand, matcher, ev_opts, filter, nb, out, scratch);
}

template <typename QueryT, typename DbT>
size_t FtlEngine::ScorePairBatch(const QueryT& query, const DbT& db,
                                 const size_t* indices, size_t n,
                                 Matcher matcher, MatchCandidate* out,
                                 uint8_t* accepted,
                                 ScoreScratch* scratch) const {
  const EvidenceOptions ev_opts = evidence_options();
  const AlphaFilter filter(models_, options_.alpha);
  const NaiveBayesMatcher nb(models_, options_.naive_bayes);
  const EngineMetrics& em = Metrics();
  em.batch_pairs->Add(static_cast<int64_t>(n));
  size_t n_accepted = 0;
  for (size_t b = 0; b < n; ++b) {
    // Reset the slot (the staging arrays are reused across batches and
    // accepted candidates are moved out of them).
    out[b] = MatchCandidate{};
    out[b].index = indices[b];
    auto&& cand = db[indices[b]];
    if (b + 1 < n) PrefetchCandidate(db[indices[b + 1]]);
    bool acc =
        ScoreOne(query, cand, matcher, ev_opts, filter, nb, &out[b], scratch);
    accepted[b] = acc ? 1 : 0;
    n_accepted += acc ? 1 : 0;
  }
  return n_accepted;
}

template <typename QueryT, typename DbT>
Result<QueryResult> FtlEngine::QueryImpl(
    const QueryT& query, const DbT& db,
    const std::vector<size_t>* candidate_indices, Matcher matcher,
    size_t num_threads, ScoreScratch* scratch,
    const QueryOptions* qopts) const {
  if (db.empty()) {
    return Status::InvalidArgument("candidate database is empty");
  }
  size_t m = candidate_indices ? candidate_indices->size() : db.size();
  if (candidate_indices) {
    for (size_t i : *candidate_indices) {
      if (i >= db.size()) {
        return Status::OutOfRange("candidate index " + std::to_string(i) +
                                  " out of range for database of size " +
                                  std::to_string(db.size()));
      }
    }
  }
  auto candidate_at = [&](size_t i) {
    return candidate_indices ? (*candidate_indices)[i] : i;
  };
  // The non-overlap pre-filter only applies when scoring the whole
  // database; an explicit candidate list is always evaluated.
  auto skip = [&](const auto& cand) {
    return candidate_indices == nullptr &&
           !options_.evaluate_non_overlapping &&
           traj::TimeSpanOverlapSeconds(query, cand) == 0;
  };
  size_t check_every =
      qopts != nullptr ? std::max<size_t>(1, qopts->check_every) : 0;

  // One query-level stopwatch plus a per-scratch tally flush is the
  // whole per-query metrics cost; per-pair accounting lives in
  // ScorePair as local integer increments.
  Stopwatch query_sw;
  auto flush_tally = [](ScoreScratch* s) {
    if (s->n_candidates == 0) return;
    const EngineMetrics& em = Metrics();
    em.candidates->Add(s->n_candidates);
    em.fast_rejects->Add(s->n_fast_reject);
    em.exact_tails->Add(s->n_exact_tail);
    em.rna_tails->Add(s->n_rna_tail);
    s->n_candidates = 0;
    s->n_fast_reject = 0;
    s->n_exact_tail = 0;
    s->n_rna_tail = 0;
  };

  QueryResult result;
  result.evaluated = m;
  size_t workers = ParallelWorkerCount(m, num_threads);
  if (workers <= 1) {
    ScoreScratch local;
    ScoreScratch* s = scratch != nullptr ? scratch : &local;
    if (qopts == nullptr) {
      // Unlimited serial path: stream candidates through the batch
      // entry point, kScoreBatchSize at a time. Evaluation order is
      // unchanged, so results are byte-identical to the per-pair loop.
      size_t idxbuf[kScoreBatchSize];
      uint8_t accbuf[kScoreBatchSize];
      std::vector<MatchCandidate> mcbuf(kScoreBatchSize);
      size_t i = 0;
      while (i < m) {
        size_t nb = 0;
        while (i < m && nb < kScoreBatchSize) {
          // A hard injected fault (unlike a fired limit) fails the
          // query.
          FTL_FAILPOINT("core.query.candidate");
          size_t idx = candidate_at(i);
          // `auto&&` so the by-value views of a FlatDatabase get
          // lifetime extension while TrajectoryDatabase still binds by
          // reference.
          auto&& cand = db[idx];
          if (!skip(cand)) idxbuf[nb++] = idx;
          ++i;
        }
        if (nb == 0) continue;
        ScorePairBatch(query, db, idxbuf, nb, matcher, mcbuf.data(), accbuf,
                       s);
        for (size_t b = 0; b < nb; ++b) {
          if (!accbuf[b]) continue;
          mcbuf[b].label = db[mcbuf[b].index].label();
          result.candidates.push_back(std::move(mcbuf[b]));
        }
      }
    } else {
      // Limit-polling path: per-pair scoring so a fired deadline or
      // cancellation truncates within check_every candidates.
      for (size_t i = 0; i < m; ++i) {
        if (i % check_every == 0) {
          Status limit = qopts->Check();
          if (!limit.ok()) {
            result.truncated = true;
            result.status = std::move(limit);
            result.evaluated = i;
            break;
          }
        }
        FTL_FAILPOINT("core.query.candidate");
        size_t idx = candidate_at(i);
        auto&& cand = db[idx];
        if (skip(cand)) continue;
        MatchCandidate mc;
        mc.index = idx;
        if (ScorePair(query, cand, matcher, &mc, s)) {
          mc.label = cand.label();
          result.candidates.push_back(std::move(mc));
        }
      }
    }
    flush_tally(s);
  } else {
    // Score into a per-candidate staging area, then collect accepted
    // candidates in index order — byte-identical to the serial loop,
    // regardless of chunk interleaving. With limits in play, chunks
    // are claimed monotonically and every claimed chunk completes, so
    // the evaluated candidates always form a contiguous prefix.
    std::vector<MatchCandidate> staged(m);
    std::vector<uint8_t> accepted(m, 0);
    std::vector<ScoreScratch> scratches(workers);
    std::mutex fail_mu;
    Status limit_status;
    Status fail_status;
    std::atomic<bool> failed{false};
    auto check_failpoint = [&]() {
      if (!failpoint::AnyArmed()) return true;
      Status fp = failpoint::Check("core.query.candidate");
      if (fp.ok()) return true;
      std::lock_guard<std::mutex> lock(fail_mu);
      if (fail_status.ok()) fail_status = std::move(fp);
      failed.store(true, std::memory_order_relaxed);
      return false;
    };
    // Unlimited chunks run through the batch entry point (positions
    // are staged alongside indices so skipped candidates do not shift
    // the output slots); the limit-polling variant stays per-pair.
    auto worker_batch_fn = [&](size_t worker, size_t begin, size_t end) {
      ScoreScratch& s = scratches[worker];
      size_t idxbuf[kScoreBatchSize];
      size_t posbuf[kScoreBatchSize];
      uint8_t accbuf[kScoreBatchSize];
      std::vector<MatchCandidate> mcbuf(kScoreBatchSize);
      size_t i = begin;
      while (i < end) {
        size_t nb = 0;
        while (i < end && nb < kScoreBatchSize) {
          if (failed.load(std::memory_order_relaxed)) return;
          if (!check_failpoint()) return;
          size_t idx = candidate_at(i);
          auto&& cand = db[idx];
          if (!skip(cand)) {
            idxbuf[nb] = idx;
            posbuf[nb] = i;
            ++nb;
          }
          ++i;
        }
        if (nb == 0) continue;
        ScorePairBatch(query, db, idxbuf, nb, matcher, mcbuf.data(), accbuf,
                       &s);
        for (size_t b = 0; b < nb; ++b) {
          staged[posbuf[b]] = std::move(mcbuf[b]);
          accepted[posbuf[b]] = accbuf[b];
        }
      }
    };
    auto worker_fn = [&](size_t worker, size_t begin, size_t end) {
      ScoreScratch& s = scratches[worker];
      for (size_t i = begin; i < end; ++i) {
        if (failed.load(std::memory_order_relaxed)) return;
        if (!check_failpoint()) return;
        size_t idx = candidate_at(i);
        auto&& cand = db[idx];
        if (skip(cand)) continue;
        staged[i].index = idx;
        accepted[i] = ScorePair(query, cand, matcher, &staged[i], &s) ? 1 : 0;
      }
    };
    size_t evaluated = m;
    if (qopts == nullptr) {
      ParallelForWorkers(m, num_threads, worker_batch_fn);
    } else {
      auto stop = [&]() {
        if (failed.load(std::memory_order_relaxed)) return true;
        Status limit = qopts->Check();
        if (limit.ok()) return false;
        std::lock_guard<std::mutex> lock(fail_mu);
        if (limit_status.ok()) limit_status = std::move(limit);
        return true;
      };
      evaluated = ParallelForWorkers(m, num_threads, stop, worker_fn);
    }
    for (ScoreScratch& s : scratches) flush_tally(&s);
    if (failed.load(std::memory_order_relaxed)) return fail_status;
    if (!limit_status.ok()) {
      result.truncated = true;
      result.status = limit_status;
      result.evaluated = evaluated;
    }
    for (size_t i = 0; i < result.evaluated; ++i) {
      if (!accepted[i]) continue;
      staged[i].label = db[staged[i].index].label();
      result.candidates.push_back(std::move(staged[i]));
    }
  }
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const MatchCandidate& a, const MatchCandidate& b) {
                     return a.score > b.score;
                   });
  result.selectiveness = static_cast<double>(result.candidates.size()) /
                         static_cast<double>(db.size());
  const EngineMetrics& em = Metrics();
  em.queries->Add(1);
  if (result.truncated) {
    (result.status.code() == StatusCode::kCancelled ? em.truncated_cancel
                                                    : em.truncated_deadline)
        ->Add(1);
  }
  em.accepted->Add(static_cast<int64_t>(result.candidates.size()));
  em.query_latency_us->Record(
      static_cast<int64_t>(query_sw.ElapsedSeconds() * 1e6));
  return result;
}

Result<QueryResult> FtlEngine::Query(const traj::Trajectory& query,
                                     const traj::TrajectoryDatabase& db,
                                     Matcher matcher) const {
  return Query(query, db, matcher, options_.num_threads);
}

Result<QueryResult> FtlEngine::Query(const traj::Trajectory& query,
                                     const traj::TrajectoryDatabase& db,
                                     Matcher matcher,
                                     size_t num_threads) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::Query before Train");
  }
  return QueryImpl(query, db, nullptr, matcher, num_threads, nullptr, nullptr);
}

Result<QueryResult> FtlEngine::Query(const traj::Trajectory& query,
                                     const traj::TrajectoryDatabase& db,
                                     Matcher matcher,
                                     const QueryOptions& qopts) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::Query before Train");
  }
  return QueryImpl(query, db, nullptr, matcher, options_.num_threads, nullptr,
                   &qopts);
}

Result<QueryResult> FtlEngine::Query(const traj::FlatTrajectoryView& query,
                                     const traj::FlatDatabase& db,
                                     Matcher matcher) const {
  return Query(query, db, matcher, options_.num_threads);
}

Result<QueryResult> FtlEngine::Query(const traj::FlatTrajectoryView& query,
                                     const traj::FlatDatabase& db,
                                     Matcher matcher,
                                     size_t num_threads) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::Query before Train");
  }
  return QueryImpl(query, db, nullptr, matcher, num_threads, nullptr, nullptr);
}

Result<QueryResult> FtlEngine::Query(const traj::FlatTrajectoryView& query,
                                     const traj::FlatDatabase& db,
                                     Matcher matcher,
                                     const QueryOptions& qopts) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::Query before Train");
  }
  return QueryImpl(query, db, nullptr, matcher, options_.num_threads, nullptr,
                   &qopts);
}

Result<QueryResult> FtlEngine::QueryWithCandidates(
    const traj::Trajectory& query, const traj::TrajectoryDatabase& db,
    const std::vector<size_t>& candidate_indices, Matcher matcher) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "FtlEngine::QueryWithCandidates before Train");
  }
  return QueryImpl(query, db, &candidate_indices, matcher,
                   options_.num_threads, nullptr, nullptr);
}

Result<QueryResult> FtlEngine::QueryWithCandidates(
    const traj::Trajectory& query, const traj::TrajectoryDatabase& db,
    const std::vector<size_t>& candidate_indices, Matcher matcher,
    const QueryOptions& qopts) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "FtlEngine::QueryWithCandidates before Train");
  }
  return QueryImpl(query, db, &candidate_indices, matcher,
                   options_.num_threads, nullptr, &qopts);
}

Result<QueryResult> FtlEngine::QueryWithCandidates(
    const traj::FlatTrajectoryView& query, const traj::FlatDatabase& db,
    const std::vector<size_t>& candidate_indices, Matcher matcher) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "FtlEngine::QueryWithCandidates before Train");
  }
  return QueryImpl(query, db, &candidate_indices, matcher,
                   options_.num_threads, nullptr, nullptr);
}

Result<QueryResult> FtlEngine::QueryWithCandidates(
    const traj::FlatTrajectoryView& query, const traj::FlatDatabase& db,
    const std::vector<size_t>& candidate_indices, Matcher matcher,
    const QueryOptions& qopts) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "FtlEngine::QueryWithCandidates before Train");
  }
  return QueryImpl(query, db, &candidate_indices, matcher,
                   options_.num_threads, nullptr, &qopts);
}

struct QueryScratch::Impl {
  FtlEngine::ScoreScratch scratch;
};

QueryScratch::QueryScratch() : impl_(std::make_unique<Impl>()) {}
QueryScratch::~QueryScratch() = default;
QueryScratch::QueryScratch(QueryScratch&&) noexcept = default;
QueryScratch& QueryScratch::operator=(QueryScratch&&) noexcept = default;

Result<QueryResult> FtlEngine::QueryWithCandidates(
    const traj::Trajectory& query, const traj::TrajectoryDatabase& db,
    const std::vector<size_t>& candidate_indices, Matcher matcher,
    const QueryOptions* qopts, QueryScratch* scratch) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "FtlEngine::QueryWithCandidates before Train");
  }
  return QueryImpl(query, db, &candidate_indices, matcher, /*num_threads=*/1,
                   scratch != nullptr ? &scratch->impl_->scratch : nullptr,
                   qopts);
}

Result<QueryResult> FtlEngine::QueryWithCandidates(
    const traj::FlatTrajectoryView& query, const traj::FlatDatabase& db,
    const std::vector<size_t>& candidate_indices, Matcher matcher,
    const QueryOptions* qopts, QueryScratch* scratch) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "FtlEngine::QueryWithCandidates before Train");
  }
  return QueryImpl(query, db, &candidate_indices, matcher, /*num_threads=*/1,
                   scratch != nullptr ? &scratch->impl_->scratch : nullptr,
                   qopts);
}

BlockingGuarantee FtlEngine::DeriveBlockingGuarantee(Matcher matcher) const {
  BlockingGuarantee g;
  const EvidenceOptions ev = evidence_options();
  const int64_t tu = std::max<int64_t>(ev.time_unit_seconds, 1);
  // A mutual segment is informative iff (dt + tu/2) / tu <
  // horizon_units (round-half-up in CollectEvidence), i.e.
  // dt <= horizon·tu − tu/2 − 1 — the largest informative gap.
  g.horizon_seconds =
      std::max<int64_t>(0, ev.horizon_units * tu - tu / 2 - 1);

  // min_segments sentinel when the models make acceptance impossible;
  // far above any reachable 2·m̂ but free of uint64 overflow.
  constexpr uint64_t kNever = uint64_t{1} << 62;

  if (matcher == Matcher::kNaiveBayes) {
    // Accept ⇔ Σ per-segment LLR >= log(1−φr) − log(φr). Each
    // informative segment contributes at most the best single-unit
    // LLR, so acceptance needs n >= gap / best.
    const double phi =
        std::min(1.0 - 1e-12, std::max(1e-12, options_.naive_bayes.phi_r));
    const double prior_gap = std::log(1.0 - phi) - std::log(phi);
    if (prior_gap <= 0.0) {
      g.min_segments = 0;  // the prior alone accepts; cannot prune
      return g;
    }
    const double floor_p = options_.naive_bayes.prob_floor;
    double best = -std::numeric_limits<double>::infinity();
    for (int64_t u = 0; u < ev.horizon_units; ++u) {
      double sr = models_.rejection.IncompatProbByUnit(u);
      double sa = models_.acceptance.IncompatProbByUnit(u);
      sr = std::min(1.0 - floor_p, std::max(floor_p, sr));
      sa = std::min(1.0 - floor_p, std::max(floor_p, sa));
      best = std::max(best, std::log(sr) - std::log(sa));
      best = std::max(best, std::log(1.0 - sr) - std::log(1.0 - sa));
    }
    if (!(best > 0.0)) {
      g.min_segments = kNever;  // no segment favors "same person"
      return g;
    }
    // The 1e-6 absolute margin dominates the classifier's float
    // accumulation error, keeping the bound conservative.
    const double n_min = (prior_gap - 1e-6) / best;
    g.min_segments =
        n_min <= 1.0 ? 1
                     : static_cast<uint64_t>(std::min<double>(
                           std::ceil(n_min), static_cast<double>(kNever)));
    return g;
  }

  // Alpha filter: accept requires p2 < alpha2 with
  // p2 >= Pr(K=0 | Ma) >= (1 − p_max)^n, widened by the sanctioned RNA
  // absolute-error budget plus a float margin. alpha2 > 1 accepts at
  // n = 0 (cannot prune); p_max = 0 makes p2 = 1 for every n (nothing
  // is ever acceptable).
  const double alpha2 = options_.alpha.alpha2;
  if (alpha2 > 1.0) {
    g.min_segments = 0;
    return g;
  }
  const double alpha2_eff =
      alpha2 + options_.alpha.tail.rna_max_abs_error + 1e-6;
  if (alpha2_eff >= 1.0) {
    g.min_segments = 1;  // only n = 0 (p2 = 1 exactly) is excluded
    return g;
  }
  double p_max = 0.0;
  for (int64_t u = 0; u < ev.horizon_units; ++u) {
    p_max = std::max(
        p_max,
        std::min(1.0, std::max(0.0, models_.acceptance.IncompatProbByUnit(u))));
  }
  if (p_max >= 1.0 - 1e-12) {
    g.min_segments = 1;
  } else if (p_max <= 0.0) {
    g.min_segments = kNever;
  } else {
    // (1 − p_max)^n < alpha2_eff ⇒ n > ratio; the widened alpha2_eff
    // already absorbs float slop, keeping floor()+1 conservative.
    const double ratio = std::log(alpha2_eff) / std::log1p(-p_max);
    g.min_segments = static_cast<uint64_t>(std::min<double>(
        std::floor(ratio) + 1.0, static_cast<double>(kNever)));
  }
  return g;
}

template <typename QueryT, typename DbT>
Result<QueryResult> FtlEngine::QueryBlockedImpl(
    const QueryT& query, const DbT& db, const BlockingIndex& index,
    BlockingMode mode, Matcher matcher, BlockingScratch* scratch,
    const QueryOptions* qopts) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::QueryBlocked before Train");
  }
  if (mode == BlockingMode::kOff) {
    return QueryImpl(query, db, nullptr, matcher, options_.num_threads,
                     nullptr, qopts);
  }
  if (index.size() != db.size()) {
    return Status::InvalidArgument(
        "blocking index covers " + std::to_string(index.size()) +
        " candidates but the database has " + std::to_string(db.size()));
  }
  BlockingScratch local;
  BlockingScratch* bs = scratch != nullptr ? scratch : &local;
  std::vector<size_t> survivors;
  if (mode == BlockingMode::kGuaranteed) {
    index.GuaranteedCandidates(query, DeriveBlockingGuarantee(matcher), bs,
                               &survivors);
  } else {
    index.Candidates(query, bs, &survivors);
  }
  return QueryImpl(query, db, &survivors, matcher, options_.num_threads,
                   nullptr, qopts);
}

Result<QueryResult> FtlEngine::QueryBlocked(
    const traj::Trajectory& query, const traj::TrajectoryDatabase& db,
    const BlockingIndex& index, BlockingMode mode, Matcher matcher,
    BlockingScratch* scratch, const QueryOptions* qopts) const {
  return QueryBlockedImpl(query, db, index, mode, matcher, scratch, qopts);
}

Result<QueryResult> FtlEngine::QueryBlocked(
    const traj::FlatTrajectoryView& query, const traj::FlatDatabase& db,
    const BlockingIndex& index, BlockingMode mode, Matcher matcher,
    BlockingScratch* scratch, const QueryOptions* qopts) const {
  return QueryBlockedImpl(query, db, index, mode, matcher, scratch, qopts);
}

Result<std::vector<QueryResult>> FtlEngine::BatchQuery(
    const std::vector<traj::Trajectory>& queries,
    const traj::TrajectoryDatabase& db, Matcher matcher) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::BatchQuery before Train");
  }
  std::vector<QueryResult> results(queries.size());
  std::vector<Status> statuses(queries.size());
  // Parallelism is spent across queries; each inner query runs serial
  // on a per-worker scratch that persists across the whole batch.
  size_t workers = ParallelWorkerCount(queries.size(), options_.num_threads);
  std::vector<ScoreScratch> scratches(workers);
  ParallelForWorkers(
      queries.size(), options_.num_threads,
      [&](size_t worker, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          auto r = QueryImpl(queries[i], db, nullptr, matcher, 1,
                             &scratches[worker], nullptr);
          if (r.ok()) {
            results[i] = std::move(r).value();
          } else {
            statuses[i] = r.status();
          }
        }
      });
  // Aggregate every failure instead of silently dropping all but the
  // first: a batch over a mixed workload should report the full damage.
  size_t failures = 0;
  std::string detail;
  StatusCode first_code = StatusCode::kInternal;
  constexpr size_t kMaxDetailed = 8;
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].ok()) continue;
    if (failures == 0) first_code = statuses[i].code();
    if (failures < kMaxDetailed) {
      detail += "; query " + std::to_string(i) + ": " +
                statuses[i].ToString();
    }
    ++failures;
  }
  if (failures > 0) {
    std::string msg = "BatchQuery: " + std::to_string(failures) + " of " +
                      std::to_string(queries.size()) + " queries failed" +
                      detail;
    if (failures > kMaxDetailed) {
      msg += "; (" + std::to_string(failures - kMaxDetailed) +
             " more not shown)";
    }
    return Status(first_code, std::move(msg));
  }
  return results;
}

Result<std::vector<QueryResult>> FtlEngine::BatchQuery(
    const std::vector<traj::Trajectory>& queries,
    const traj::TrajectoryDatabase& db, Matcher matcher,
    const QueryOptions& qopts) const {
  if (!trained_) {
    return Status::FailedPrecondition("FtlEngine::BatchQuery before Train");
  }
  std::vector<QueryResult> results(queries.size());
  std::vector<Status> statuses(queries.size());
  size_t workers = ParallelWorkerCount(queries.size(), options_.num_threads);
  std::vector<ScoreScratch> scratches(workers);
  ParallelForWorkers(
      queries.size(), options_.num_threads,
      [&](size_t worker, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          // Cheap pre-check: once the shared limit fires, the queries
          // that have not started get an empty truncated result
          // instead of spinning up just to stop at their first
          // candidate.
          Status limit = qopts.Check();
          if (!limit.ok()) {
            results[i].truncated = true;
            results[i].status = std::move(limit);
            results[i].evaluated = 0;
            continue;
          }
          auto r = QueryImpl(queries[i], db, nullptr, matcher, 1,
                             &scratches[worker], &qopts);
          if (r.ok()) {
            results[i] = std::move(r).value();
          } else {
            statuses[i] = r.status();
          }
        }
      });
  // A fired limit is reported per query (truncated results above), so
  // only hard errors fail the batch — same aggregation as the
  // unlimited overload.
  size_t failures = 0;
  std::string detail;
  StatusCode first_code = StatusCode::kInternal;
  constexpr size_t kMaxDetailed = 8;
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].ok()) continue;
    if (failures == 0) first_code = statuses[i].code();
    if (failures < kMaxDetailed) {
      detail += "; query " + std::to_string(i) + ": " +
                statuses[i].ToString();
    }
    ++failures;
  }
  if (failures > 0) {
    std::string msg = "BatchQuery: " + std::to_string(failures) + " of " +
                      std::to_string(queries.size()) + " queries failed" +
                      detail;
    if (failures > kMaxDetailed) {
      msg += "; (" + std::to_string(failures - kMaxDetailed) +
             " more not shown)";
    }
    return Status(first_code, std::move(msg));
  }
  return results;
}

}  // namespace ftl::core
