#ifndef FTL_CORE_SHARDED_H_
#define FTL_CORE_SHARDED_H_

/// \file sharded.h
/// Sharded (scatter–gather) fuzzy linking — the single-process model of
/// the "parallel and distributed implementation" the paper names as
/// future work.
///
/// The candidate database is partitioned into shards; each shard is
/// scored independently (in parallel across worker threads, exactly as
/// separate machines would) and the per-shard candidate lists are merged
/// and re-ranked. Because FTL scores each (query, candidate) pair
/// independently, sharded results are *identical* to single-node
/// results — the property that makes the distributed design trivial to
/// reason about, and which the tests enforce.

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "traj/database.h"
#include "util/status.h"

namespace ftl::core {

/// Sharded engine configuration.
struct ShardedOptions {
  size_t num_shards = 4;
  EngineOptions engine;  ///< engine.num_threads parallelizes shards
};

/// Scatter–gather wrapper around FtlEngine.
class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedOptions options = {});

  /// Trains global models on the full (p, q) and partitions q into
  /// shards (round-robin). Models are global — every shard classifies
  /// with the same statistics, as distributed workers sharing a model
  /// snapshot would.
  Status Train(const traj::TrajectoryDatabase& p,
               const traj::TrajectoryDatabase& q);

  /// Scatter the query to every shard, gather and re-rank candidates.
  /// Candidate indices refer to the ORIGINAL database. Selectiveness is
  /// relative to the full database size.
  Result<QueryResult> Query(const traj::Trajectory& query,
                            Matcher matcher) const;

  /// Number of shards actually built (<= num_shards for small Q).
  size_t num_shards() const { return shards_.size(); }

  /// Total candidates across shards.
  size_t total_candidates() const { return total_candidates_; }

 private:
  ShardedOptions options_;
  FtlEngine engine_;  // holds the trained models + scoring options
  // Each shard owns copies of its trajectories plus their original
  // indices (what a remote worker's local store would hold).
  struct Shard {
    traj::TrajectoryDatabase db;
    std::vector<size_t> original_index;
  };
  std::vector<Shard> shards_;
  size_t total_candidates_ = 0;
};

}  // namespace ftl::core

#endif  // FTL_CORE_SHARDED_H_
