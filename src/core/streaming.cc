#include "core/streaming.h"

#include <algorithm>

#include "stats/grouped_poisson_binomial.h"

namespace ftl::core {

StreamingLinker::StreamingLinker(ModelPair models, EvidenceOptions options)
    : models_(std::move(models)), options_(options) {}

Status StreamingLinker::AddWatch(const std::string& label) {
  auto [it, inserted] = watch_index_.emplace(label, watches_.size());
  if (!inserted) {
    return Status::InvalidArgument("watch '" + label +
                                   "' already registered");
  }
  WatchState ws;
  ws.label = label;
  ws.pairs.resize(candidate_labels_.size());
  watches_.push_back(std::move(ws));
  return Status::OK();
}

void StreamingLinker::TouchPair(PairState* pair, StreamSide side,
                                const traj::Record& record) const {
  if (pair->has_last) {
    bool mutual = pair->last_side != side;
    if (mutual) {
      MutualSegmentEvidence& ev = pair->evidence;
      ++ev.total_mutual;
      int64_t dt = traj::TimeDiff(pair->last_record, record);
      int64_t unit =
          (dt + options_.time_unit_seconds / 2) / options_.time_unit_seconds;
      bool compatible =
          traj::IsCompatible(pair->last_record, record, options_.vmax_mps);
      if (unit >= options_.horizon_units) {
        if (!compatible) ++ev.beyond_horizon_incompatible;
      } else {
        ev.units.push_back(static_cast<int32_t>(unit));
        ev.incompatible.push_back(compatible ? 0 : 1);
      }
    }
  }
  pair->last_record = record;
  pair->last_side = side;
  pair->has_last = true;
}

Status StreamingLinker::Ingest(StreamSide side, const std::string& label,
                               const traj::Record& record) {
  if (any_ingested_ && record.t < last_time_) {
    return Status::InvalidArgument(
        "records must arrive in non-decreasing time order (got t=" +
        std::to_string(record.t) + " after t=" +
        std::to_string(last_time_) + ")");
  }
  if (side == StreamSide::kQuery) {
    auto it = watch_index_.find(label);
    if (it == watch_index_.end()) {
      return Status::NotFound("query label '" + label +
                              "' was not registered with AddWatch");
    }
    // A watch record extends the alignment of every pair of this watch.
    WatchState& ws = watches_[it->second];
    for (auto& pair : ws.pairs) {
      TouchPair(&pair, side, record);
    }
    ws.last_watch_record = record;
    ws.has_watch_record = true;
  } else {
    auto [it, inserted] =
        candidate_index_.emplace(label, candidate_labels_.size());
    if (inserted) {
      candidate_labels_.push_back(label);
      for (auto& ws : watches_) {
        PairState pair;
        if (ws.has_watch_record) {
          pair.last_record = ws.last_watch_record;
          pair.last_side = StreamSide::kQuery;
          pair.has_last = true;
        }
        ws.pairs.push_back(std::move(pair));
      }
    }
    size_t ci = it->second;
    for (auto& ws : watches_) {
      TouchPair(&ws.pairs[ci], side, record);
    }
  }
  last_time_ = record.t;
  any_ingested_ = true;
  ++ingested_;
  return Status::OK();
}

PairBelief StreamingLinker::MakeBelief(const WatchState& watch,
                                       size_t cand_idx,
                                       BeliefScratch* scratch) const {
  const PairState& pair = watch.pairs[cand_idx];
  PairBelief b;
  b.watch_label = watch.label;
  b.candidate_label = candidate_labels_[cand_idx];
  b.informative_segments = pair.evidence.size();
  b.incompatible = pair.evidence.ObservedIncompatible();
  // Compact the accumulated per-segment evidence and evaluate both
  // tails with the grouped kernel: O(n + convolution) instead of two
  // O(n^2) per-trial DPs, with scratch reused across a ranking pass.
  CompactEvidence(pair.evidence,
                  static_cast<size_t>(options_.horizon_units),
                  &scratch->buckets);
  stats::GroupedTailParams tail;
  scratch->buckets.GroupsUnder(models_.rejection, &scratch->pb.groups);
  b.p1 = stats::GroupedPoissonBinomialTails(scratch->pb.groups,
                                            b.incompatible, tail,
                                            &scratch->pb)
             .upper;
  scratch->buckets.GroupsUnder(models_.acceptance, &scratch->pb.groups);
  b.p2 = stats::GroupedPoissonBinomialTails(scratch->pb.groups,
                                            b.incompatible, tail,
                                            &scratch->pb)
             .lower;
  b.score = b.p1 * (1.0 - b.p2);
  return b;
}

Result<PairBelief> StreamingLinker::Belief(
    const std::string& watch_label,
    const std::string& candidate_label) const {
  auto wit = watch_index_.find(watch_label);
  if (wit == watch_index_.end()) {
    return Status::NotFound("unknown watch '" + watch_label + "'");
  }
  auto cit = candidate_index_.find(candidate_label);
  if (cit == candidate_index_.end()) {
    return Status::NotFound("unknown candidate '" + candidate_label + "'");
  }
  BeliefScratch scratch;
  return MakeBelief(watches_[wit->second], cit->second, &scratch);
}

Result<std::vector<PairBelief>> StreamingLinker::RankedCandidates(
    const std::string& watch_label) const {
  auto wit = watch_index_.find(watch_label);
  if (wit == watch_index_.end()) {
    return Status::NotFound("unknown watch '" + watch_label + "'");
  }
  const WatchState& ws = watches_[wit->second];
  std::vector<PairBelief> beliefs;
  beliefs.reserve(ws.pairs.size());
  BeliefScratch scratch;
  for (size_t ci = 0; ci < ws.pairs.size(); ++ci) {
    beliefs.push_back(MakeBelief(ws, ci, &scratch));
  }
  std::stable_sort(beliefs.begin(), beliefs.end(),
                   [](const PairBelief& a, const PairBelief& b) {
                     return a.score > b.score;
                   });
  return beliefs;
}

}  // namespace ftl::core
