#include "core/enrichment.h"

#include <algorithm>

#include "util/string_util.h"

namespace ftl::core {

Result<EnrichedTrajectory> Enrich(const traj::Trajectory& p,
                                  const traj::Trajectory& q,
                                  const EnrichmentOptions& options) {
  if (p.empty() && q.empty()) {
    return Status::InvalidArgument("both trajectories are empty");
  }
  EnrichedTrajectory out;
  out.p_label = p.label();
  out.q_label = q.label();
  auto aligned = traj::Align(p, q);
  out.records.reserve(aligned.size());
  for (const auto& ar : aligned) {
    out.records.push_back(EnrichedRecord{
        ar.record, ar.source == traj::Source::kP ? options.p_source_name
                                                 : options.q_source_name});
  }
  traj::ForEachMutualSegment(p, q, [&](const traj::Segment& s) {
    if (!traj::IsCompatible(s.first, s.second, options.vmax_mps)) {
      ++out.incompatible_mutual_segments;
    }
  });
  out.p_fraction = aligned.empty()
                       ? 0.0
                       : static_cast<double>(p.size()) /
                             static_cast<double>(aligned.size());

  // Densification: mean sampling gap of the merge vs the denser source.
  auto mean_gap = [](const traj::Trajectory& t) {
    return t.size() >= 2 ? t.MeanGapSeconds() : 0.0;
  };
  double merged_gap =
      aligned.size() >= 2
          ? static_cast<double>(aligned.back().record.t -
                                aligned.front().record.t) /
                static_cast<double>(aligned.size() - 1)
          : 0.0;
  double best_single = 0.0;
  if (p.size() >= 2 && q.size() >= 2) {
    best_single = std::min(mean_gap(p), mean_gap(q));
  } else if (p.size() >= 2) {
    best_single = mean_gap(p);
  } else if (q.size() >= 2) {
    best_single = mean_gap(q);
  }
  out.densification_factor =
      (merged_gap > 0.0 && best_single > 0.0) ? best_single / merged_gap
                                              : 1.0;
  return out;
}

std::string ToTableString(const EnrichedTrajectory& enriched,
                          size_t max_rows) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"time", "x", "y", "source"});
  size_t shown = 0;
  for (const auto& er : enriched.records) {
    if (shown++ >= max_rows) break;
    rows.push_back({std::to_string(er.record.t),
                    FormatDouble(er.record.location.x, 1),
                    FormatDouble(er.record.location.y, 1), er.source});
  }
  std::string out = "linked: " + enriched.p_label + " <-> " +
                    enriched.q_label + "\n";
  out += RenderTable(rows);
  if (enriched.records.size() > max_rows) {
    out += "... (" + std::to_string(enriched.records.size() - max_rows) +
           " more rows)\n";
  }
  return out;
}

}  // namespace ftl::core
