#include "core/naive_bayes.h"

#include <algorithm>
#include <cmath>

namespace ftl::core {

NaiveBayesMatcher::NaiveBayesMatcher(const ModelPair& models,
                                     const NaiveBayesParams& params)
    : models_(models), params_(params) {}

double NaiveBayesMatcher::LogLikelihood(
    const MutualSegmentEvidence& evidence,
    const CompatibilityModel& model) const {
  double ll = 0.0;
  double floor = params_.prob_floor;
  for (size_t i = 0; i < evidence.size(); ++i) {
    double s = model.IncompatProbByUnit(evidence.units[i]);
    s = std::min(1.0 - floor, std::max(floor, s));
    ll += evidence.incompatible[i] ? std::log(s) : std::log(1.0 - s);
  }
  return ll;
}

double NaiveBayesMatcher::LogLikelihood(
    const BucketEvidence& evidence, const CompatibilityModel& model) const {
  double ll = 0.0;
  double floor = params_.prob_floor;
  for (size_t u = 0; u < evidence.horizon_units(); ++u) {
    int32_t n_u = evidence.count[u];
    if (n_u == 0) continue;
    double s = model.IncompatProbByUnit(static_cast<int64_t>(u));
    s = std::min(1.0 - floor, std::max(floor, s));
    int32_t inc = evidence.incompatible[u];
    ll += static_cast<double>(inc) * std::log(s) +
          static_cast<double>(n_u - inc) * std::log(1.0 - s);
  }
  return ll;
}

NaiveBayesDecision NaiveBayesMatcher::Classify(
    const MutualSegmentEvidence& evidence) const {
  NaiveBayesDecision d;
  d.n_segments = evidence.size();
  double phi_r = std::min(1.0 - 1e-12, std::max(1e-12, params_.phi_r));
  d.log_post_same =
      std::log(phi_r) + LogLikelihood(evidence, models_.rejection);
  d.log_post_diff =
      std::log(1.0 - phi_r) + LogLikelihood(evidence, models_.acceptance);
  d.same_person = d.log_post_same >= d.log_post_diff;
  return d;
}

NaiveBayesDecision NaiveBayesMatcher::Classify(
    const BucketEvidence& evidence) const {
  NaiveBayesDecision d;
  d.n_segments = static_cast<size_t>(evidence.informative);
  double phi_r = std::min(1.0 - 1e-12, std::max(1e-12, params_.phi_r));
  d.log_post_same =
      std::log(phi_r) + LogLikelihood(evidence, models_.rejection);
  d.log_post_diff =
      std::log(1.0 - phi_r) + LogLikelihood(evidence, models_.acceptance);
  d.same_person = d.log_post_same >= d.log_post_diff;
  return d;
}

NaiveBayesDecision NaiveBayesMatcher::Classify(
    const traj::Trajectory& p, const traj::Trajectory& q,
    const EvidenceOptions& options) const {
  return Classify(CollectEvidence(p, q, options));
}

}  // namespace ftl::core
