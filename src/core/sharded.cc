#include "core/sharded.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace ftl::core {

ShardedEngine::ShardedEngine(ShardedOptions options)
    : options_(std::move(options)), engine_(options_.engine) {}

Status ShardedEngine::Train(const traj::TrajectoryDatabase& p,
                            const traj::TrajectoryDatabase& q) {
  FTL_RETURN_NOT_OK(engine_.Train(p, q));
  size_t n_shards = std::max<size_t>(1, options_.num_shards);
  n_shards = std::min(n_shards, std::max<size_t>(1, q.size()));
  shards_.clear();
  shards_.resize(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    shards_[s].db.set_name(q.name() + "/shard-" + std::to_string(s));
  }
  for (size_t i = 0; i < q.size(); ++i) {
    Shard& shard = shards_[i % n_shards];
    FTL_RETURN_NOT_OK(shard.db.Add(q[i]));
    shard.original_index.push_back(i);
  }
  total_candidates_ = q.size();
  return Status::OK();
}

Result<QueryResult> ShardedEngine::Query(const traj::Trajectory& query,
                                         Matcher matcher) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("ShardedEngine::Query before Train");
  }
  std::vector<Result<QueryResult>> shard_results;
  shard_results.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_results.emplace_back(QueryResult{});
  }
  // Scatter: each shard is an independent worker. Inner queries run
  // serial (explicit 1-thread override) — parallelism is already spent
  // at the shard grain, exactly as separate machines would.
  ParallelFor(shards_.size(), options_.engine.num_threads, [&](size_t s) {
    shard_results[s] = engine_.Query(query, shards_[s].db, matcher, 1);
  });
  // Gather: remap to original indices, merge, re-rank.
  QueryResult merged;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shard_results[s].ok()) return shard_results[s].status();
    for (const MatchCandidate& c : shard_results[s].value().candidates) {
      MatchCandidate global = c;
      global.index = shards_[s].original_index[c.index];
      merged.candidates.push_back(std::move(global));
    }
  }
  std::stable_sort(merged.candidates.begin(), merged.candidates.end(),
                   [](const MatchCandidate& a, const MatchCandidate& b) {
                     return a.score > b.score;
                   });
  merged.selectiveness = static_cast<double>(merged.candidates.size()) /
                         static_cast<double>(total_candidates_);
  return merged;
}

}  // namespace ftl::core
