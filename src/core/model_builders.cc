#include "core/model_builders.h"

#include <algorithm>

#include "traj/alignment.h"

namespace ftl::core {

namespace {

/// Shared bucket accumulator for both builders.
class BucketAccumulator {
 public:
  explicit BucketAccumulator(const ModelTrainingOptions& options)
      : options_(options),
        incompat_(static_cast<size_t>(options.horizon_units), 0),
        total_(static_cast<size_t>(options.horizon_units), 0) {}

  /// Adds one segment observation (Algorithm 1/2 inner loop).
  void AddSegment(const traj::Record& a, const traj::Record& b) {
    int64_t dt = traj::TimeDiff(a, b);
    int64_t unit = (dt + options_.time_unit_seconds / 2) /
                   options_.time_unit_seconds;
    if (unit >= options_.horizon_units) return;  // always compatible
    size_t u = static_cast<size_t>(unit);
    ++total_[u];
    if (!traj::IsCompatible(a, b, options_.vmax_mps)) ++incompat_[u];
  }

  size_t observations() const {
    size_t n = 0;
    for (int64_t t : total_) n += static_cast<size_t>(t);
    return n;
  }

  /// Finalizes bucket frequencies into a model. Buckets with no
  /// observations are filled by linear interpolation between their
  /// nearest observed neighbours (leading gap copies the first observed
  /// value; trailing gap decays linearly to 0 at the horizon).
  CompatibilityModel Finalize() const {
    size_t h = total_.size();
    std::vector<double> probs(h, -1.0);
    double alpha = options_.laplace_alpha;
    for (size_t i = 0; i < h; ++i) {
      if (total_[i] > 0) {
        probs[i] = (static_cast<double>(incompat_[i]) + alpha) /
                   (static_cast<double>(total_[i]) + 2.0 * alpha);
      }
    }
    FillGaps(&probs);
    CompatibilityModel model(options_.time_unit_seconds, std::move(probs));
    model.set_support(total_);
    return model;
  }

 private:
  static void FillGaps(std::vector<double>* probs) {
    size_t h = probs->size();
    // Leading gap: copy first observed value.
    size_t first = h;
    for (size_t i = 0; i < h; ++i) {
      if ((*probs)[i] >= 0.0) {
        first = i;
        break;
      }
    }
    if (first == h) {
      // No observations at all: degenerate model, all zeros.
      std::fill(probs->begin(), probs->end(), 0.0);
      return;
    }
    for (size_t i = 0; i < first; ++i) (*probs)[i] = (*probs)[first];
    // Interior gaps: interpolate; trailing gap: decay to 0 at horizon.
    size_t last_obs = first;
    for (size_t i = first + 1; i < h; ++i) {
      if ((*probs)[i] < 0.0) continue;
      if (i > last_obs + 1) {
        double lo = (*probs)[last_obs];
        double hi_v = (*probs)[i];
        for (size_t j = last_obs + 1; j < i; ++j) {
          double t = static_cast<double>(j - last_obs) /
                     static_cast<double>(i - last_obs);
          (*probs)[j] = lo + (hi_v - lo) * t;
        }
      }
      last_obs = i;
    }
    if (last_obs + 1 < h) {
      double lo = (*probs)[last_obs];
      size_t span = h - last_obs;
      for (size_t j = last_obs + 1; j < h; ++j) {
        double t = static_cast<double>(j - last_obs) /
                   static_cast<double>(span);
        (*probs)[j] = lo * (1.0 - t);
      }
    }
  }

  const ModelTrainingOptions& options_;
  std::vector<int64_t> incompat_;
  std::vector<int64_t> total_;
};

Status ValidateOptions(const ModelTrainingOptions& options) {
  if (options.vmax_mps <= 0.0) {
    return Status::InvalidArgument("vmax must be positive");
  }
  if (options.time_unit_seconds <= 0) {
    return Status::InvalidArgument("time unit must be positive");
  }
  if (options.horizon_units <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  if (options.laplace_alpha < 0.0) {
    return Status::InvalidArgument("laplace alpha must be >= 0");
  }
  return Status::OK();
}

void AccumulateSelfSegments(const traj::TrajectoryDatabase& db,
                            BucketAccumulator* acc) {
  for (const auto& t : db) {
    const auto& recs = t.records();
    for (size_t i = 1; i < recs.size(); ++i) {
      acc->AddSegment(recs[i - 1], recs[i]);
    }
  }
}

void AccumulateDifferentPersonPairs(const traj::TrajectoryDatabase& db,
                                    const ModelTrainingOptions& options,
                                    Rng* rng, BucketAccumulator* acc) {
  size_t n = db.size();
  if (n < 2) return;
  for (size_t k = 0; k < options.acceptance_pairs_per_db; ++k) {
    size_t i = rng->Index(n);
    size_t j = rng->Index(n - 1);
    if (j >= i) ++j;  // uniform pair with i != j
    // Skip the rare same-owner pair so the model stays a pure
    // different-person statistic (possible when a source splits one
    // owner across labels).
    if (db[i].owner() != traj::kUnknownOwner &&
        db[i].owner() == db[j].owner()) {
      continue;
    }
    traj::VisitMutualSegments(
        db[i], db[j], [acc](const traj::Segment& s) {
          acc->AddSegment(s.first, s.second);
        });
  }
}

}  // namespace

Result<CompatibilityModel> BuildRejectionModel(
    const traj::TrajectoryDatabase& p, const traj::TrajectoryDatabase& q,
    const ModelTrainingOptions& options) {
  FTL_RETURN_NOT_OK(ValidateOptions(options));
  BucketAccumulator acc(options);
  AccumulateSelfSegments(p, &acc);
  AccumulateSelfSegments(q, &acc);
  if (acc.observations() == 0) {
    return Status::FailedPrecondition(
        "rejection model: no segments within the horizon; databases too "
        "sparse or horizon too small");
  }
  return acc.Finalize();
}

Result<CompatibilityModel> BuildAcceptanceModel(
    const traj::TrajectoryDatabase& p, const traj::TrajectoryDatabase& q,
    const ModelTrainingOptions& options) {
  FTL_RETURN_NOT_OK(ValidateOptions(options));
  if (p.size() < 2 && q.size() < 2) {
    return Status::FailedPrecondition(
        "acceptance model: need at least two trajectories in one database");
  }
  Rng rng(options.seed);
  BucketAccumulator acc(options);
  AccumulateDifferentPersonPairs(p, options, &rng, &acc);
  AccumulateDifferentPersonPairs(q, options, &rng, &acc);
  if (acc.observations() == 0) {
    return Status::FailedPrecondition(
        "acceptance model: sampled pairs produced no mutual segments "
        "within the horizon");
  }
  return acc.Finalize();
}

Result<ModelPair> BuildModels(const traj::TrajectoryDatabase& p,
                              const traj::TrajectoryDatabase& q,
                              const ModelTrainingOptions& options) {
  auto rej = BuildRejectionModel(p, q, options);
  if (!rej.ok()) return rej.status();
  auto acc = BuildAcceptanceModel(p, q, options);
  if (!acc.ok()) return acc.status();
  return ModelPair{std::move(rej).value(), std::move(acc).value()};
}

}  // namespace ftl::core
