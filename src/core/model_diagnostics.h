#ifndef FTL_CORE_MODEL_DIAGNOSTICS_H_
#define FTL_CORE_MODEL_DIAGNOSTICS_H_

/// \file model_diagnostics.h
/// Trained-model diagnostics: "will FTL work on this data?"
///
/// The paper's criterion for its model statistics is *discrimination* —
/// "the models [must be] highly distinguishable by their sets of
/// statistics" (Section IV-B). This header quantifies that: per-bucket
/// divergence between the rejection and acceptance models, an overall
/// separability score, and the expected number of informative mutual
/// segments a query pair needs before the classifiers have real power.

#include <string>
#include <vector>

#include "core/model_builders.h"

namespace ftl::core {

/// Separability of a trained model pair.
struct ModelDiagnostics {
  /// Per-bucket Jensen-Shannon divergence (bits, in [0,1]) between the
  /// two Bernoulli incompatibility distributions.
  std::vector<double> bucket_js_bits;

  /// Support-weighted mean of bucket_js_bits — the single-number
  /// discriminability of this dataset pair (0 = models identical,
  /// 1 = perfectly separable everywhere).
  double mean_js_bits = 0.0;

  /// Buckets where the acceptance probability does not exceed the
  /// rejection probability — regions with no (or inverted) signal.
  size_t inverted_buckets = 0;

  /// Expected informative segments needed for the expected Naive-Bayes
  /// log-odds gap to reach ~5 nats (a decisive posterior), assuming
  /// segments fall in the support-weighted "average" bucket. +inf when
  /// the models carry no signal.
  double segments_for_decisive_link = 0.0;

  /// Human-readable summary.
  std::string ToString() const;
};

/// Computes diagnostics for a trained pair. Buckets beyond either
/// model's horizon are ignored.
ModelDiagnostics DiagnoseModels(const ModelPair& models);

}  // namespace ftl::core

#endif  // FTL_CORE_MODEL_DIAGNOSTICS_H_
