#ifndef FTL_CORE_ASSIGNMENT_H_
#define FTL_CORE_ASSIGNMENT_H_

/// \file assignment.h
/// Global one-to-one assignment across a batch of queries.
///
/// The paper scores each query independently, so one popular candidate
/// can appear in many queries' candidate sets even though each real
/// person owns at most one trajectory per database. When a whole query
/// batch is linked at once, enforcing one-to-one consistency (each
/// candidate assigned to at most one query, greedily by descending
/// score) resolves those collisions and measurably improves top-1
/// precision — an extension in the spirit of Guha et al.'s
/// minimum-cost perfect matching, which the paper reviews.

#include <cstdint>
#include <vector>

#include "core/engine.h"

namespace ftl::core {

/// One resolved link.
struct Assignment {
  size_t query_index = 0;      ///< position in the query batch
  size_t candidate_index = 0;  ///< position in the candidate database
  double score = 0.0;          ///< the Eq. 2 score of the pair
};

/// Greedy descending-score one-to-one assignment over per-query ranked
/// results. Each query is assigned at most one candidate and each
/// candidate at most one query. Pairs with score < `min_score` are not
/// assigned.
std::vector<Assignment> AssignOneToOne(
    const std::vector<QueryResult>& results, double min_score = 0.0);

/// Top-1 accuracy of an assignment against ground-truth owners:
/// fraction of queries whose assigned candidate shares their owner.
/// Unassigned queries count as misses.
double AssignmentAccuracy(const std::vector<Assignment>& assignments,
                          const std::vector<traj::OwnerId>& query_owners,
                          const traj::TrajectoryDatabase& db);

}  // namespace ftl::core

#endif  // FTL_CORE_ASSIGNMENT_H_
