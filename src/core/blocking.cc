#include "core/blocking.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ftl::core {

BlockingIndex::BlockingIndex(const traj::TrajectoryDatabase& db,
                             const BlockingOptions& options)
    : db_(db), options_(options) {
  spans_.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    const auto& t = db[i];
    if (t.empty()) {
      spans_.emplace_back(1, 0);  // empty span: never overlaps
    } else {
      spans_.emplace_back(t.front().t, t.back().t);
    }
    if (options_.use_spatial) {
      std::unordered_set<int64_t> cells;
      double g = options_.cell_size_meters;
      for (const auto& r : t.records()) {
        int32_t cx = static_cast<int32_t>(std::floor(r.location.x / g));
        int32_t cy = static_cast<int32_t>(std::floor(r.location.y / g));
        cells.insert(CellKey(cx, cy));
      }
      for (int64_t c : cells) {
        cell_to_candidates_[c].push_back(static_cast<uint32_t>(i));
      }
    }
  }
}

std::vector<size_t> BlockingIndex::Candidates(
    const traj::Trajectory& query) const {
  std::vector<size_t> out;
  Candidates(query, &out);
  return out;
}

void BlockingIndex::Candidates(const traj::Trajectory& query,
                               std::vector<size_t>* out) const {
  out->clear();
  if (query.empty()) return;

  // Spatial pass: count shared (expanded) cells per candidate. The
  // count buffer and probe set are per-thread scratch so a query loop
  // allocates nothing in steady state.
  thread_local std::vector<uint32_t> shared_counts;
  thread_local std::unordered_set<int64_t> probe_cells;
  if (options_.use_spatial) {
    shared_counts.assign(spans_.size(), 0);
    double g = options_.cell_size_meters;
    int nb = options_.neighborhood;
    probe_cells.clear();
    for (const auto& r : query.records()) {
      int32_t cx = static_cast<int32_t>(std::floor(r.location.x / g));
      int32_t cy = static_cast<int32_t>(std::floor(r.location.y / g));
      for (int dx = -nb; dx <= nb; ++dx) {
        for (int dy = -nb; dy <= nb; ++dy) {
          probe_cells.insert(CellKey(cx + dx, cy + dy));
        }
      }
    }
    // A candidate's cell set is deduplicated at build time, but a probe
    // may hit the same candidate cell via several query records'
    // expansions; count each candidate cell once per probe cell.
    for (int64_t c : probe_cells) {
      auto it = cell_to_candidates_.find(c);
      if (it == cell_to_candidates_.end()) continue;
      for (uint32_t cand : it->second) ++shared_counts[cand];
    }
  }

  int64_t q_first = query.front().t - options_.temporal_slack_seconds;
  int64_t q_last = query.back().t + options_.temporal_slack_seconds;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (options_.use_temporal) {
      auto [c_first, c_last] = spans_[i];
      if (c_first > c_last) continue;  // empty candidate
      if (c_last < q_first || c_first > q_last) continue;
    }
    if (options_.use_spatial &&
        shared_counts[i] < options_.min_shared_cells) {
      continue;
    }
    out->push_back(i);
  }
}

}  // namespace ftl::core
