#include "core/blocking.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace ftl::core {
namespace {

/// Grid coordinates are clamped to ±2^30 before the int32 cast, so
/// extreme coordinates (or a tiny cell size) stay well-defined and a
/// neighborhood offset can never wrap int32.
constexpr double kMaxCellCoord = 1073741824.0;  // 2^30

/// A candidate whose span covers more buckets than this goes to the
/// always-checked overflow list instead of one posting per bucket,
/// bounding index size against epoch-spanning outliers.
constexpr int64_t kMaxSpanBuckets = 1024;

int32_t CellCoord(double v, double cell_size) {
  double c = std::floor(v / cell_size);
  if (!(c >= -kMaxCellCoord)) return static_cast<int32_t>(-kMaxCellCoord);
  if (c > kMaxCellCoord) return static_cast<int32_t>(kMaxCellCoord);
  return static_cast<int32_t>(c);
}

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b, r = a % b;
  return (r != 0 && (r < 0) != (b < 0)) ? q - 1 : q;
}

int64_t SatAdd(int64_t a, int64_t b) {
  int64_t r;
  if (__builtin_add_overflow(a, b, &r)) {
    return b > 0 ? std::numeric_limits<int64_t>::max()
                 : std::numeric_limits<int64_t>::min();
  }
  return r;
}

int64_t SatSub(int64_t a, int64_t b) {
  int64_t r;
  if (__builtin_sub_overflow(a, b, &r)) {
    return b > 0 ? std::numeric_limits<int64_t>::min()
                 : std::numeric_limits<int64_t>::max();
  }
  return r;
}

/// Pre-resolved obs handles (names are resolved once per process; the
/// per-event cost is one relaxed atomic add — DESIGN.md §8).
struct BlockingMetrics {
  obs::Counter* builds;
  obs::Histogram* build_us;
  obs::Counter* queries_aggressive;
  obs::Counter* queries_guaranteed;
  obs::Counter* pairs_examined;
  obs::Counter* pairs_pruned;
};

const BlockingMetrics& Metrics() {
  static const BlockingMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    BlockingMetrics out;
    out.builds = &r.GetCounter("ftl_blocking_index_builds_total");
    out.build_us = &r.GetHistogram("ftl_blocking_index_build_us");
    out.queries_aggressive =
        &r.GetCounter("ftl_blocking_queries_total{mode=\"aggressive\"}");
    out.queries_guaranteed =
        &r.GetCounter("ftl_blocking_queries_total{mode=\"guaranteed\"}");
    out.pairs_examined = &r.GetCounter("ftl_blocking_pairs_examined_total");
    out.pairs_pruned = &r.GetCounter("ftl_blocking_pairs_pruned_total");
    return out;
  }();
  return m;
}

void RecordQuery(bool guaranteed, size_t survivors, size_t total) {
  const BlockingMetrics& m = Metrics();
  (guaranteed ? m.queries_guaranteed : m.queries_aggressive)->Add(1);
  m.pairs_examined->Add(static_cast<int64_t>(survivors));
  m.pairs_pruned->Add(static_cast<int64_t>(total - survivors));
}

/// Grows the stamped accumulators to `n` candidates and opens a fresh
/// generation, so stale counts from earlier queries (or other index
/// instances) read as unset without any O(n) clearing.
void OpenGeneration(BlockingScratch* s, size_t n) {
  if (s->stamp.size() < n) {
    s->stamp.resize(n, 0);
    s->count.resize(n, 0);
  }
  if (++s->generation == 0) {  // wrapped: stamps are ambiguous, clear
    std::fill(s->stamp.begin(), s->stamp.end(), 0u);
    s->generation = 1;
  }
  s->touched.clear();
}

void Touch(BlockingScratch* s, uint32_t cand, uint32_t add) {
  if (s->stamp[cand] != s->generation) {
    s->stamp[cand] = s->generation;
    s->count[cand] = add;
    s->touched.push_back(cand);
  } else {
    uint64_t c = static_cast<uint64_t>(s->count[cand]) + add;
    s->count[cand] = static_cast<uint32_t>(
        std::min<uint64_t>(c, std::numeric_limits<uint32_t>::max()));
  }
}

/// [min t, max t] over all records; computed explicitly instead of
/// trusting front()/back(), so inputs violating the sorted invariant
/// (e.g. hand-built FlatDatabase columns) still get a correct span.
template <typename TrajT>
std::pair<int64_t, int64_t> TimeSpan(const TrajT& t) {
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = std::numeric_limits<int64_t>::min();
  for (size_t j = 0; j < t.size(); ++j) {
    int64_t ts = t[j].t;
    lo = std::min(lo, ts);
    hi = std::max(hi, ts);
  }
  return {lo, hi};
}

struct KeyEntry {
  int64_t key;
  uint32_t cand;
  uint32_t weight;
  bool operator<(const KeyEntry& o) const {
    return key != o.key ? key < o.key : cand < o.cand;
  }
};

}  // namespace

const char* BlockingModeName(BlockingMode mode) {
  switch (mode) {
    case BlockingMode::kOff:
      return "off";
    case BlockingMode::kGuaranteed:
      return "guaranteed";
    case BlockingMode::kAggressive:
      return "aggressive";
  }
  return "off";
}

Result<BlockingMode> ParseBlockingMode(std::string_view name) {
  if (name == "off") return BlockingMode::kOff;
  if (name == "guaranteed") return BlockingMode::kGuaranteed;
  if (name == "aggressive") return BlockingMode::kAggressive;
  return Status::InvalidArgument(
      "unknown blocking mode '" + std::string(name) +
      "' (expected off | guaranteed | aggressive)");
}

Status BlockingOptions::Validate() const {
  if (!std::isfinite(cell_size_meters) || cell_size_meters <= 0.0) {
    return Status::InvalidArgument(
        "blocking cell_size_meters must be positive and finite");
  }
  if (temporal_slack_seconds < 0) {
    return Status::InvalidArgument(
        "blocking temporal_slack_seconds must be non-negative");
  }
  if (time_bucket_seconds <= 0) {
    return Status::InvalidArgument(
        "blocking time_bucket_seconds must be positive");
  }
  if (neighborhood < 0 || neighborhood > 16) {
    return Status::InvalidArgument(
        "blocking neighborhood must be in [0, 16]");
  }
  return Status();
}

BlockingIndex::BlockingIndex(const traj::TrajectoryDatabase& db,
                             const BlockingOptions& options)
    : options_(options) {
  Build(db);
}

BlockingIndex::BlockingIndex(const traj::FlatDatabase& db,
                             const BlockingOptions& options)
    : options_(options) {
  Build(db);
}

template <typename DbT>
void BlockingIndex::Build(const DbT& db) {
  Stopwatch sw;
  // Clamp invalid knobs to safe defaults (callers that must reject
  // instead run BlockingOptions::Validate() first).
  if (!std::isfinite(options_.cell_size_meters) ||
      options_.cell_size_meters <= 0.0) {
    options_.cell_size_meters = 3000.0;
  }
  if (options_.temporal_slack_seconds < 0) options_.temporal_slack_seconds = 0;
  if (options_.time_bucket_seconds <= 0) options_.time_bucket_seconds = 3600;
  options_.neighborhood = std::clamp(options_.neighborhood, 0, 16);

  const size_t n = db.size();
  num_candidates_ = n;
  spans_.assign(n, {1, 0});  // (1, 0): empty span, never overlaps

  const int64_t bucket = options_.time_bucket_seconds;
  const double cell = options_.cell_size_meters;
  std::vector<KeyEntry> occ, spn, cel;
  std::vector<int64_t> tmp;
  for (size_t i = 0; i < n; ++i) {
    const auto& t = db[i];
    const size_t m = t.size();
    if (m == 0) continue;
    const uint32_t cand = static_cast<uint32_t>(i);

    // Occupancy: one (bucket, record count) posting per occupied
    // bucket; also the exact span, as a true min/max over records.
    auto [lo, hi] = TimeSpan(t);
    spans_[i] = {lo, hi};
    tmp.clear();
    for (size_t j = 0; j < m; ++j) tmp.push_back(FloorDiv(t[j].t, bucket));
    std::sort(tmp.begin(), tmp.end());
    for (size_t j = 0; j < tmp.size();) {
      size_t k = j;
      while (k < tmp.size() && tmp[k] == tmp[j]) ++k;
      occ.push_back({tmp[j], cand, static_cast<uint32_t>(k - j)});
      j = k;
    }

    // Span coverage: every bucket in [bucket(lo), bucket(hi)], unless
    // the span is so long it would bloat the lists.
    if (options_.use_temporal) {
      int64_t b0 = FloorDiv(lo, bucket), b1 = FloorDiv(hi, bucket);
      if (b1 - b0 >= kMaxSpanBuckets) {
        span_overflow_.push_back(cand);
      } else {
        for (int64_t b = b0; b <= b1; ++b) spn.push_back({b, cand, 1});
      }
    }

    // Spatial cells: deduplicated per candidate.
    if (options_.use_spatial) {
      tmp.clear();
      for (size_t j = 0; j < m; ++j) {
        const auto r = t[j];
        tmp.push_back(CellKey(CellCoord(r.location.x, cell),
                              CellCoord(r.location.y, cell)));
      }
      std::sort(tmp.begin(), tmp.end());
      tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
      for (int64_t c : tmp) cel.push_back({c, cand, 1});
    }
  }

  auto flatten = [](std::vector<KeyEntry>* in, PostingLists* out,
                    bool keep_weight) {
    std::sort(in->begin(), in->end());
    out->keys.clear();
    out->begin.clear();
    out->entry.reserve(in->size());
    for (const KeyEntry& e : *in) {
      if (out->keys.empty() || out->keys.back() != e.key) {
        out->keys.push_back(e.key);
        out->begin.push_back(static_cast<uint32_t>(out->entry.size()));
      }
      out->entry.push_back(e.cand);
      if (keep_weight) out->weight.push_back(e.weight);
    }
    out->begin.push_back(static_cast<uint32_t>(out->entry.size()));
    in->clear();
    in->shrink_to_fit();
  };
  flatten(&occ, &occupancy_, /*keep_weight=*/true);
  flatten(&spn, &span_, /*keep_weight=*/false);
  flatten(&cel, &cells_, /*keep_weight=*/false);

  build_micros_ = static_cast<int64_t>(sw.ElapsedSeconds() * 1e6);
  Metrics().builds->Add(1);
  Metrics().build_us->Record(build_micros_);
}

template <typename QueryT>
void BlockingIndex::AccumulateSharedCells(const QueryT& query,
                                          BlockingScratch* scratch) const {
  // Base cells of the query, deduplicated.
  std::vector<int64_t>& keys = scratch->keys;
  keys.clear();
  const double cell = options_.cell_size_meters;
  for (size_t j = 0; j < query.size(); ++j) {
    const auto r = query[j];
    keys.push_back(CellKey(CellCoord(r.location.x, cell),
                           CellCoord(r.location.y, cell)));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // Neighborhood expansion (appended after the base portion, then
  // deduplicated; adjacent base cells share ring cells). A probe may
  // hit the same candidate cell via several query cells' expansions;
  // each candidate cell counts once per probe cell.
  const int nb = options_.neighborhood;
  size_t probe_lo = 0, probe_hi = keys.size();
  if (nb > 0) {
    probe_lo = keys.size();
    for (size_t j = 0; j < probe_lo; ++j) {
      int32_t cx = static_cast<int32_t>(keys[j] >> 32);
      int32_t cy = static_cast<int32_t>(static_cast<uint32_t>(keys[j]));
      for (int dx = -nb; dx <= nb; ++dx) {
        for (int dy = -nb; dy <= nb; ++dy) {
          keys.push_back(CellKey(cx + dx, cy + dy));
        }
      }
    }
    std::sort(keys.begin() + probe_lo, keys.end());
    keys.erase(std::unique(keys.begin() + probe_lo, keys.end()), keys.end());
    probe_hi = keys.size();
  }

  for (size_t j = probe_lo; j < probe_hi; ++j) {
    auto it = std::lower_bound(cells_.keys.begin(), cells_.keys.end(),
                               keys[j]);
    if (it == cells_.keys.end() || *it != keys[j]) continue;
    size_t row = static_cast<size_t>(it - cells_.keys.begin());
    for (uint32_t e = cells_.begin[row]; e < cells_.begin[row + 1]; ++e) {
      Touch(scratch, cells_.entry[e], 1);
    }
  }
}

template <typename QueryT>
void BlockingIndex::CandidatesImpl(const QueryT& query,
                                   BlockingScratch* scratch,
                                   std::vector<size_t>* out) const {
  out->clear();
  if (query.empty()) {
    RecordQuery(/*guaranteed=*/false, 0, num_candidates_);
    return;
  }
  const bool spatial = options_.use_spatial && options_.min_shared_cells > 0;
  const bool temporal = options_.use_temporal;
  if (!spatial && !temporal) {  // no blockers: identity
    out->resize(num_candidates_);
    std::iota(out->begin(), out->end(), size_t{0});
    RecordQuery(false, out->size(), num_candidates_);
    return;
  }

  auto [q_min, q_max] = TimeSpan(query);
  const int64_t q_lo = SatSub(q_min, options_.temporal_slack_seconds);
  const int64_t q_hi = SatAdd(q_max, options_.temporal_slack_seconds);

  OpenGeneration(scratch, num_candidates_);
  if (spatial) {
    // Spatial survivors, refined by the exact span predicate — the
    // temporal index is only needed when no spatial list narrows the
    // candidate set first.
    AccumulateSharedCells(query, scratch);
    for (uint32_t cand : scratch->touched) {
      if (scratch->count[cand] < options_.min_shared_cells) continue;
      if (temporal && !SpanOverlaps(cand, q_lo, q_hi)) continue;
      out->push_back(cand);
    }
  } else {
    // Temporal only: probe the span lists for every bucket in the
    // query window (an interval of the sorted occupied-bucket keys, so
    // degenerate windows cost nothing), add the long-span overflow
    // list, then refine probe hits with the exact span predicate —
    // bucket rounding alone would admit near misses.
    const int64_t bucket = options_.time_bucket_seconds;
    const int64_t b_lo = FloorDiv(q_lo, bucket);
    const int64_t b_hi = FloorDiv(q_hi, bucket);
    auto it = std::lower_bound(span_.keys.begin(), span_.keys.end(), b_lo);
    for (; it != span_.keys.end() && *it <= b_hi; ++it) {
      size_t row = static_cast<size_t>(it - span_.keys.begin());
      for (uint32_t e = span_.begin[row]; e < span_.begin[row + 1]; ++e) {
        Touch(scratch, span_.entry[e], 1);
      }
    }
    for (uint32_t cand : span_overflow_) Touch(scratch, cand, 1);
    for (uint32_t cand : scratch->touched) {
      if (SpanOverlaps(cand, q_lo, q_hi)) out->push_back(cand);
    }
  }
  std::sort(out->begin(), out->end());
  RecordQuery(false, out->size(), num_candidates_);
}

template <typename QueryT>
void BlockingIndex::GuaranteedImpl(const QueryT& query,
                                   const BlockingGuarantee& guarantee,
                                   BlockingScratch* scratch,
                                   std::vector<size_t>* out) const {
  out->clear();
  if (guarantee.min_segments == 0) {
    // The accept criterion needs no evidence; nothing can be pruned.
    out->resize(num_candidates_);
    std::iota(out->begin(), out->end(), size_t{0});
    RecordQuery(/*guaranteed=*/true, out->size(), num_candidates_);
    return;
  }
  if (query.empty()) {
    // No records → no mutual segments → nothing acceptable.
    RecordQuery(true, 0, num_candidates_);
    return;
  }

  // Distinct query buckets, expanded ±r buckets and merged into
  // disjoint intervals so every candidate record lands in at most one
  // probed interval (m̂ must count each record once).
  const int64_t bucket = options_.time_bucket_seconds;
  const int64_t horizon = std::max<int64_t>(guarantee.horizon_seconds, 0);
  const int64_t r = (horizon + bucket - 1) / bucket;
  std::vector<int64_t>& keys = scratch->keys;
  keys.clear();
  for (size_t j = 0; j < query.size(); ++j) {
    keys.push_back(FloorDiv(query[j].t, bucket));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  OpenGeneration(scratch, num_candidates_);
  size_t j = 0;
  while (j < keys.size()) {
    int64_t lo = SatSub(keys[j], r), hi = SatAdd(keys[j], r);
    ++j;
    while (j < keys.size() && SatSub(keys[j], r) <= SatAdd(hi, 1)) {
      hi = SatAdd(keys[j], r);
      ++j;
    }
    auto it = std::lower_bound(occupancy_.keys.begin(),
                               occupancy_.keys.end(), lo);
    for (; it != occupancy_.keys.end() && *it <= hi; ++it) {
      size_t row = static_cast<size_t>(it - occupancy_.keys.begin());
      for (uint32_t e = occupancy_.begin[row]; e < occupancy_.begin[row + 1];
           ++e) {
        Touch(scratch, occupancy_.entry[e], occupancy_.weight[e]);
      }
    }
  }

  // Keep iff the segment-count upper bound 2·m̂ reaches min_segments.
  for (uint32_t cand : scratch->touched) {
    if (2 * static_cast<uint64_t>(scratch->count[cand]) >=
        guarantee.min_segments) {
      out->push_back(cand);
    }
  }
  std::sort(out->begin(), out->end());
  RecordQuery(true, out->size(), num_candidates_);
}

void BlockingIndex::Candidates(const traj::Trajectory& query,
                               BlockingScratch* scratch,
                               std::vector<size_t>* out) const {
  CandidatesImpl(query, scratch, out);
}

void BlockingIndex::Candidates(const traj::FlatTrajectoryView& query,
                               BlockingScratch* scratch,
                               std::vector<size_t>* out) const {
  CandidatesImpl(query, scratch, out);
}

std::vector<size_t> BlockingIndex::Candidates(
    const traj::Trajectory& query) const {
  BlockingScratch scratch;
  std::vector<size_t> out;
  CandidatesImpl(query, &scratch, &out);
  return out;
}

std::vector<size_t> BlockingIndex::Candidates(
    const traj::FlatTrajectoryView& query) const {
  BlockingScratch scratch;
  std::vector<size_t> out;
  CandidatesImpl(query, &scratch, &out);
  return out;
}

void BlockingIndex::Candidates(const traj::Trajectory& query,
                               std::vector<size_t>* out) const {
  BlockingScratch scratch;
  CandidatesImpl(query, &scratch, out);
}

void BlockingIndex::GuaranteedCandidates(const traj::Trajectory& query,
                                         const BlockingGuarantee& guarantee,
                                         BlockingScratch* scratch,
                                         std::vector<size_t>* out) const {
  GuaranteedImpl(query, guarantee, scratch, out);
}

void BlockingIndex::GuaranteedCandidates(
    const traj::FlatTrajectoryView& query, const BlockingGuarantee& guarantee,
    BlockingScratch* scratch, std::vector<size_t>* out) const {
  GuaranteedImpl(query, guarantee, scratch, out);
}

}  // namespace ftl::core
