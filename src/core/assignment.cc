#include "core/assignment.h"

#include <algorithm>
#include <unordered_set>

namespace ftl::core {

std::vector<Assignment> AssignOneToOne(
    const std::vector<QueryResult>& results, double min_score) {
  // Flatten all (query, candidate, score) triples and sort by score.
  std::vector<Assignment> pool;
  for (size_t qi = 0; qi < results.size(); ++qi) {
    for (const auto& c : results[qi].candidates) {
      if (c.score < min_score) continue;
      pool.push_back(Assignment{qi, c.index, c.score});
    }
  }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Assignment& a, const Assignment& b) {
                     return a.score > b.score;
                   });
  std::unordered_set<size_t> used_queries, used_candidates;
  std::vector<Assignment> out;
  for (const auto& a : pool) {
    if (used_queries.count(a.query_index) ||
        used_candidates.count(a.candidate_index)) {
      continue;
    }
    used_queries.insert(a.query_index);
    used_candidates.insert(a.candidate_index);
    out.push_back(a);
  }
  std::sort(out.begin(), out.end(),
            [](const Assignment& a, const Assignment& b) {
              return a.query_index < b.query_index;
            });
  return out;
}

double AssignmentAccuracy(const std::vector<Assignment>& assignments,
                          const std::vector<traj::OwnerId>& query_owners,
                          const traj::TrajectoryDatabase& db) {
  if (query_owners.empty()) return 0.0;
  size_t correct = 0;
  for (const auto& a : assignments) {
    if (a.query_index >= query_owners.size()) continue;
    if (db[a.candidate_index].owner() == query_owners[a.query_index]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(query_owners.size());
}

}  // namespace ftl::core
