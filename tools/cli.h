#ifndef FTL_TOOLS_CLI_H_
#define FTL_TOOLS_CLI_H_

/// \file cli.h
/// The `ftl` command-line tool, factored as a library so every
/// subcommand is unit-testable.
///
/// Subcommands:
///   ftl simulate --out-p p.csv --out-q q.csv [--config SF] [--objects N]
///   ftl stats    --db data.csv
///   ftl train    --p p.csv --q q.csv --out-rejection r.model
///                --out-acceptance a.model
///   ftl link     --p p.csv --q q.csv [--query LABEL] [--matcher nb|alpha]
///                [--phi 0.01 | --alpha1 0.01 --alpha2 0.1] [--top K]
///                [--json]
///   ftl export   --db data.csv --out data.geojson
///   ftl validate --db data.csv [--sanitized-out clean.csv]
///   ftl diagnose --p p.csv --q q.csv
///   ftl calibrate --p p.csv --q q.csv [--matcher nb|alpha]
///                 [--budget 10] [--queries 50]
///   ftl enrich   --p p.csv --q q.csv --query LABEL --candidate LABEL
///   ftl convert  --in data.csv --out data.ftb [--to ftb|csv]
///   ftl metrics  [--format prom|json]
///   ftl ingest   --store DIR --in data.csv [--wal-sync always|interval|never]
///                [--flush-threshold N] [--flush]
///                append trajectories to a crash-safe store (DESIGN.md §12)
///   ftl serve    --p p.csv --ftb q.ftb [--ftb more.ftb ...]
///                [--listen 127.0.0.1:8080] [--threads N] [--max-queue 128]
///                [--request-deadline-ms MS] [--matcher nb|alpha]
///                run the long-lived query daemon (docs/OPERATIONS.md);
///                with --store DIR instead of --ftb the candidate side is
///                a live store: POST /v1/ingest appends, queries see new
///                data immediately, /readyz gates the warm-up
///
/// Any `--p` / `--q` / `--db` / `--in` input may be an FTB binary store
/// instead of CSV; the format is detected by magic bytes, not
/// extension.
///
/// Every subcommand returns a Status and writes human-readable output to
/// the provided stream. Global flags:
///   --failpoints SPEC   arm fault-injection sites ("site=action[:arg];...")
///                       for this invocation; FTL_FAILPOINTS in the
///                       environment does the same.
///   --lenient           load CSVs in quarantine mode: malformed rows are
///                       reported and skipped instead of failing the load.
///   --quarantine-out F  with --lenient, write quarantined rows of each
///                       input to F.<flag>.csv (e.g. F.p.csv, F.q.csv).
///   --metrics-out F     after the command runs (even on failure), write
///                       a snapshot of the process metrics registry to F
///                       (.prom/.txt: Prometheus text; otherwise JSON).

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace ftl::tools {

/// Parsed `--key value` arguments (flags without values get "true").
class ArgMap {
 public:
  /// Parses argv-style tokens after the subcommand name.
  static Result<ArgMap> Parse(const std::vector<std::string>& args);

  /// Value of `--key`, or `fallback`.
  std::string Get(const std::string& key, const std::string& fallback) const;

  /// True when `--key` was supplied.
  bool Has(const std::string& key) const;

  /// Every value of a repeatable `--key`, in flag order (empty when
  /// absent). Used by `serve --ftb`, which accepts a shard list.
  std::vector<std::string> GetAll(const std::string& key) const;

  /// Numeric accessors; return fallback on absent, error on malformed.
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// The status→exit-code mapping lives in util/status.h now so the
/// one-shot CLI and the serve daemon share one table; re-exported here
/// for existing callers (tests, main).
using ::ftl::ExitCodeForStatus;

/// Dispatches a full command line (without the program name). Returns
/// the process exit status; regular output goes to `out`, error
/// diagnostics to `err`.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

/// Single-stream convenience overload: errors share `out`.
int RunCli(const std::vector<std::string>& args, std::ostream& out);

/// Individual subcommands (exposed for tests).
Status CmdSimulate(const ArgMap& args, std::ostream& out);
Status CmdStats(const ArgMap& args, std::ostream& out);
Status CmdTrain(const ArgMap& args, std::ostream& out);
Status CmdLink(const ArgMap& args, std::ostream& out);
Status CmdExport(const ArgMap& args, std::ostream& out);
Status CmdValidate(const ArgMap& args, std::ostream& out);
Status CmdDiagnose(const ArgMap& args, std::ostream& out);
Status CmdCalibrate(const ArgMap& args, std::ostream& out);
Status CmdEnrich(const ArgMap& args, std::ostream& out);
Status CmdConvert(const ArgMap& args, std::ostream& out);
Status CmdMetrics(const ArgMap& args, std::ostream& out);

/// Appends trajectories from --in to the WAL-backed store at --store
/// (creating it on first use), one atomic batch per trajectory.
/// Distinct exit codes via ExitCodeForStatus: 2 bad flags
/// (InvalidArgument), 4 IO fault (IOError), 5 backpressure
/// (OutOfRange), 6 store broken (FailedPrecondition).
Status CmdIngest(const ArgMap& args, std::ostream& out);

/// Runs the query daemon until a graceful drain completes (SIGTERM /
/// SIGINT / POST /admin/shutdown). Blocks; prints one line to `out`
/// when listening and one when drained.
Status CmdServe(const ArgMap& args, std::ostream& out);

/// The usage text.
std::string UsageText();

}  // namespace ftl::tools

#endif  // FTL_TOOLS_CLI_H_
