// Entry point of the `ftl` command-line tool. All logic lives in
// cli.cc so it can be unit-tested.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ftl::tools::RunCli(args, std::cout, std::cerr);
}
