#include "tools/cli.h"

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>

#include "ftl/ftl.h"
#include "obs/metrics.h"

namespace ftl::tools {

Result<ArgMap> ArgMap::Parse(const std::vector<std::string>& args) {
  ArgMap m;
  size_t i = 0;
  while (i < args.size()) {
    const std::string& tok = args[i];
    if (tok.rfind("--", 0) != 0 || tok.size() <= 2) {
      return Status::InvalidArgument("expected --flag, got '" + tok + "'");
    }
    std::string key = tok.substr(2);
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      m.kv_.emplace_back(key, args[i + 1]);
      i += 2;
    } else {
      m.kv_.emplace_back(key, "true");
      i += 1;
    }
  }
  return m;
}

std::string ArgMap::Get(const std::string& key,
                        const std::string& fallback) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  return fallback;
}

bool ArgMap::Has(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return true;
  }
  return false;
}

std::vector<std::string> ArgMap::GetAll(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

Result<double> ArgMap::GetDouble(const std::string& key,
                                 double fallback) const {
  if (!Has(key)) return fallback;
  double v = 0;
  if (!ParseDouble(Get(key, ""), &v)) {
    return Status::InvalidArgument("--" + key + " expects a number, got '" +
                                   Get(key, "") + "'");
  }
  return v;
}

Result<int64_t> ArgMap::GetInt(const std::string& key,
                               int64_t fallback) const {
  if (!Has(key)) return fallback;
  int64_t v = 0;
  if (!ParseInt64(Get(key, ""), &v)) {
    return Status::InvalidArgument("--" + key +
                                   " expects an integer, got '" +
                                   Get(key, "") + "'");
  }
  return v;
}

std::string UsageText() {
  return
      "ftl — fuzzy trajectory linking toolkit\n"
      "\n"
      "usage: ftl <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  simulate  --out-p P.csv --out-q Q.csv [--config SF] [--objects N]\n"
      "            [--seed S]          generate a synthetic dataset pair\n"
      "  stats     --db D.csv          print Table-I style statistics\n"
      "  train     --p P.csv --q Q.csv --out-rejection R.model\n"
      "            --out-acceptance A.model [--vmax-kph 120] [--unit-s 60]\n"
      "            [--horizon 60]      train and persist both models\n"
      "  link      --p P.csv --q Q.csv [--query LABEL] [--matcher nb|alpha]\n"
      "            [--phi 0.01] [--alpha1 0.01] [--alpha2 0.1] [--top 10]\n"
      "            [--threads 1] [--json] [--blocking off|guaranteed|\n"
      "            aggressive]\n"
      "                                link query trajectories against Q;\n"
      "                                --json emits one JSON document per\n"
      "                                query (the serve API's wire format)\n"
      "  export    --db D.csv --out D.geojson\n"
      "                                convert a database to GeoJSON\n"
      "  validate  --db D.csv [--sanitized-out C.csv]\n"
      "                                audit data quality, optionally fix\n"
      "  diagnose  --p P.csv --q Q.csv report model separability\n"
      "  calibrate --p P.csv --q Q.csv [--matcher nb|alpha] [--budget 10]\n"
      "            [--queries 50]      auto-pick thresholds for a budget\n"
      "  enrich    --p P.csv --q Q.csv --query L1 --candidate L2\n"
      "                                merge a linked pair (Figure 2)\n"
      "  convert   --in D.csv --out D.ftb [--to ftb|csv]\n"
      "                                convert between CSV and the FTB\n"
      "                                binary columnar store\n"
      "  metrics   [--format prom|json]\n"
      "                                dump the process metrics registry\n"
      "  ingest    --store DIR --in D.csv\n"
      "                                append trajectories to a crash-safe\n"
      "                                WAL-backed store (one atomic batch\n"
      "                                per trajectory; DESIGN.md §12)\n"
      "    --wal-sync MODE           always|interval|never: fsync policy\n"
      "                              (default interval; always = every\n"
      "                              acked append survives any crash)\n"
      "    --wal-sync-interval-ms MS fsync cadence for interval mode\n"
      "                              (default 50)\n"
      "    --flush-threshold N       memtable records before an automatic\n"
      "                              flush to an immutable FTB segment\n"
      "                              (default 100000)\n"
      "    --flush-max-age-s S       also flush when the memtable is older\n"
      "                              than S seconds (default 0 = off)\n"
      "    --backpressure-factor F   reject appends (exit code 5) once the\n"
      "                              memtable exceeds F x flush-threshold\n"
      "                              with flushes failing (default 4)\n"
      "    --flush                   force a final flush after ingesting\n"
      "    --compact-trigger N       compact once the store holds >= N\n"
      "                              segments (default 0 = off); ingest\n"
      "                              compacts inline before exiting, serve\n"
      "                              runs a background compactor thread\n"
      "    --compact-max-segments M  segments merged per compaction round\n"
      "                              (default 8, minimum 2)\n"
      "  serve     --p P.csv --ftb Q.ftb [--ftb MORE.ftb ...]\n"
      "                                run the long-lived query daemon:\n"
      "                                HTTP/1.1 JSON API (POST /v1/query,\n"
      "                                POST /v1/rank, POST /v1/ingest,\n"
      "                                GET /metrics, GET /healthz,\n"
      "                                GET /readyz, POST /admin/shutdown)\n"
      "    --listen H:P              bind address (default 127.0.0.1:8080)\n"
      "    --ftb FILE                candidate shard, repeatable; shards\n"
      "                              merge in flag order (CSV or FTB,\n"
      "                              sniffed by magic bytes)\n"
      "    --store DIR               candidate side is a live store\n"
      "                              instead of static shards: /v1/ingest\n"
      "                              appends (visible immediately), the\n"
      "                              port binds before recovery + training\n"
      "                              and /readyz gates the warm-up; the\n"
      "                              ingest flags above apply\n"
      "    --threads N               worker threads (default: one per\n"
      "                              hardware thread; with --query-threads\n"
      "                              set, defaults to hardware threads /\n"
      "                              query threads to keep the product\n"
      "                              within the machine)\n"
      "    --query-threads N         store mode: shard each query's\n"
      "                              segment walk over N threads; results\n"
      "                              stay byte-identical (default 1)\n"
      "    --max-queue N             bounded request queue; beyond it new\n"
      "                              requests get 503 + Retry-After\n"
      "                              (default 128)\n"
      "    --request-deadline-ms MS  default per-request deadline; expired\n"
      "                              requests get 408 with the partial\n"
      "                              result (default 0 = none)\n"
      "    --matcher nb|alpha        default matcher for requests that\n"
      "                              name none (default nb)\n"
      "                              see docs/OPERATIONS.md + docs/API.md\n"
      "\n"
      "candidate generation (link + serve, DESIGN.md §13):\n"
      "  --blocking MODE       off (default, exhaustive) | guaranteed\n"
      "                        (prune with byte-identical results) |\n"
      "                        aggressive (span-overlap + co-visitation\n"
      "                        heuristics; recall < 1)\n"
      "  --blocking-bucket-s S time-bucket width, seconds (default 3600)\n"
      "  --blocking-slack-s S  aggressive span slack, seconds\n"
      "                        (default 21600)\n"
      "  --blocking-cell-m M   aggressive grid cell size, meters\n"
      "                        (default 3000)\n"
      "  --blocking-min-cells N  shared cells required (0 disables the\n"
      "                        spatial blocker; default 1)\n"
      "  --blocking-neighborhood R  cell expansion rings (default 1)\n"
      "\n"
      "Any --p/--q/--db/--in input may be a .ftb file (detected by magic\n"
      "bytes, loaded zero-copy via mmap) instead of CSV.\n"
      "\n"
      "global flags:\n"
      "  --lenient             quarantine malformed CSV rows instead of\n"
      "                        failing the load (summary printed)\n"
      "  --quarantine-out F    with --lenient, write quarantined rows of\n"
      "                        each input to F.<flag>.csv\n"
      "  --failpoints SPEC     arm fault injection: site=action[:arg];...\n"
      "                        (also via the FTL_FAILPOINTS env var)\n"
      "  --metrics-out F       after the command runs, write a metrics\n"
      "                        snapshot to F (.prom/.txt: Prometheus text,\n"
      "                        otherwise JSON); written even on failure\n";
}

namespace {

/// Loads one input (CSV or FTB, sniffed by magic bytes) honoring the
/// global --lenient / --quarantine-out flags. `flag` names the sidecar
/// suffix and diagnostics only; `path` is the actual input.
Result<traj::TrajectoryDatabase> LoadDbFromPath(const std::string& path,
                                                const ArgMap& args,
                                                const std::string& flag,
                                                std::ostream& out) {
  if (path.empty()) {
    return Status::InvalidArgument("missing required --" + flag);
  }
  // Transparent binary-store detection: an input starting with the FTB
  // magic loads through the columnar reader regardless of extension.
  // --lenient does not apply (it quarantines malformed CSV rows; FTB
  // sections are checksummed whole and either load or are rejected).
  if (io::SniffFtb(path)) {
    auto flat = io::ReadFtb(path);
    if (!flat.ok()) return flat.status();
    traj::TrajectoryDatabase db = flat.value().ToDatabase();
    if (db.name().empty()) db.set_name(path);
    return db;
  }
  if (!args.Has("lenient")) return io::ReadCsv(path, path);
  io::CsvReadOptions opts;
  opts.lenient = true;
  std::string sidecar = args.Get("quarantine-out", "");
  if (!sidecar.empty()) {
    opts.sidecar_path = sidecar + "." + flag + ".csv";
  }
  io::QuarantineReport report;
  auto db = io::ReadCsv(path, path, opts, &report);
  if (db.ok() && !report.empty()) {
    out << path << ": " << report.ToString() << "\n";
    for (const auto& sample : report.sample_rows) {
      out << "  " << sample << "\n";
    }
    if (!opts.sidecar_path.empty()) {
      out << "  quarantined rows written to " << opts.sidecar_path << "\n";
    }
  }
  return db;
}

Result<traj::TrajectoryDatabase> LoadDb(const ArgMap& args,
                                        const std::string& flag,
                                        std::ostream& out) {
  return LoadDbFromPath(args.Get(flag, ""), args, flag, out);
}

Result<core::EngineOptions> EngineOptionsFromArgs(const ArgMap& args) {
  core::EngineOptions eo;
  auto vmax = args.GetDouble("vmax-kph", 120.0);
  if (!vmax.ok()) return vmax.status();
  eo.training.vmax_mps = geo::KphToMps(vmax.value());
  auto unit = args.GetInt("unit-s", 60);
  if (!unit.ok()) return unit.status();
  eo.training.time_unit_seconds = unit.value();
  auto horizon = args.GetInt("horizon", 60);
  if (!horizon.ok()) return horizon.status();
  eo.training.horizon_units = horizon.value();
  auto phi = args.GetDouble("phi", 0.01);
  if (!phi.ok()) return phi.status();
  eo.naive_bayes.phi_r = phi.value();
  auto a1 = args.GetDouble("alpha1", 0.01);
  if (!a1.ok()) return a1.status();
  auto a2 = args.GetDouble("alpha2", 0.1);
  if (!a2.ok()) return a2.status();
  eo.alpha = {a1.value(), a2.value()};
  auto threads = args.GetInt("threads", 1);
  if (!threads.ok()) return threads.status();
  eo.num_threads = static_cast<size_t>(std::max<int64_t>(1,
                                                          threads.value()));
  return eo;
}

/// Parses the shared candidate-generation flags (`ftl link`,
/// `ftl serve`, and the store commands): --blocking MODE plus the
/// tuning knobs. Returns mode kOff when the flag is absent.
Status BlockingFromArgs(const ArgMap& args, core::BlockingMode* mode,
                        core::BlockingOptions* bo) {
  auto m = core::ParseBlockingMode(args.Get("blocking", "off"));
  if (!m.ok()) return m.status();
  *mode = m.value();
  auto cell = args.GetDouble("blocking-cell-m", bo->cell_size_meters);
  if (!cell.ok()) return cell.status();
  bo->cell_size_meters = cell.value();
  auto slack = args.GetInt("blocking-slack-s", bo->temporal_slack_seconds);
  if (!slack.ok()) return slack.status();
  bo->temporal_slack_seconds = slack.value();
  auto bucket = args.GetInt("blocking-bucket-s", bo->time_bucket_seconds);
  if (!bucket.ok()) return bucket.status();
  bo->time_bucket_seconds = bucket.value();
  auto cells = args.GetInt("blocking-min-cells",
                           static_cast<int64_t>(bo->min_shared_cells));
  if (!cells.ok()) return cells.status();
  if (cells.value() < 0) {
    return Status::InvalidArgument("--blocking-min-cells must be >= 0");
  }
  bo->min_shared_cells = static_cast<size_t>(cells.value());
  auto hood = args.GetInt("blocking-neighborhood", bo->neighborhood);
  if (!hood.ok()) return hood.status();
  bo->neighborhood = static_cast<int>(hood.value());
  if (*mode != core::BlockingMode::kOff) {
    FTL_RETURN_NOT_OK(bo->Validate());
  }
  return Status::OK();
}

/// Parses the shared store flags (`ftl ingest`, `ftl serve --store`).
Result<store::StoreOptions> StoreOptionsFromArgs(const ArgMap& args) {
  store::StoreOptions so;
  auto sync = store::ParseWalSync(args.Get("wal-sync", "interval"));
  if (!sync.ok()) return sync.status();
  so.wal_sync = sync.value();
  auto interval = args.GetInt("wal-sync-interval-ms", 50);
  if (!interval.ok()) return interval.status();
  if (interval.value() < 1) {
    return Status::InvalidArgument("--wal-sync-interval-ms must be >= 1");
  }
  so.wal_sync_interval_ms = interval.value();
  auto threshold = args.GetInt("flush-threshold", 100000);
  if (!threshold.ok()) return threshold.status();
  if (threshold.value() < 1) {
    return Status::InvalidArgument("--flush-threshold must be >= 1");
  }
  so.flush_threshold_records = static_cast<size_t>(threshold.value());
  auto age = args.GetDouble("flush-max-age-s", 0.0);
  if (!age.ok()) return age.status();
  if (age.value() < 0) {
    return Status::InvalidArgument("--flush-max-age-s must be >= 0");
  }
  so.flush_max_age_seconds = age.value();
  auto bp = args.GetDouble("backpressure-factor", 4.0);
  if (!bp.ok()) return bp.status();
  if (bp.value() < 1.0) {
    return Status::InvalidArgument("--backpressure-factor must be >= 1");
  }
  so.backpressure_factor = bp.value();
  auto trigger = args.GetInt("compact-trigger", 0);
  if (!trigger.ok()) return trigger.status();
  if (trigger.value() < 0) {
    return Status::InvalidArgument("--compact-trigger must be >= 0");
  }
  so.compact_trigger = static_cast<size_t>(trigger.value());
  auto maxseg = args.GetInt("compact-max-segments", 8);
  if (!maxseg.ok()) return maxseg.status();
  if (maxseg.value() < 2) {
    return Status::InvalidArgument("--compact-max-segments must be >= 2");
  }
  so.compact_max_segments = static_cast<size_t>(maxseg.value());
  FTL_RETURN_NOT_OK(BlockingFromArgs(args, &so.blocking_mode, &so.blocking));
  return so;
}

void PrintRecoveryInfo(const store::RecoveryInfo& info, std::ostream& out) {
  out << "recovered store: generation " << info.generation << ", "
      << info.segments << " segment(s), replayed " << info.replayed_batches
      << " batch(es) / " << info.replayed_records << " record(s)";
  if (info.torn_bytes_dropped > 0) {
    out << ", dropped " << info.torn_bytes_dropped << " torn WAL byte(s)";
  }
  if (info.orphans_removed > 0) {
    out << ", removed " << info.orphans_removed << " orphan file(s)";
  }
  out << " in " << info.seconds << "s\n";
}

}  // namespace

Status CmdIngest(const ArgMap& args, std::ostream& out) {
  std::string dir = args.Get("store", "");
  if (dir.empty()) {
    return Status::InvalidArgument("ingest needs --store DIR");
  }
  auto db = LoadDb(args, "in", out);
  if (!db.ok()) return db.status();

  auto so = StoreOptionsFromArgs(args);
  if (!so.ok()) return so.status();
  store::RecoveryInfo info;
  auto opened = store::Store::Open(dir, so.value(), &info);
  if (!opened.ok()) return opened.status();
  store::Store& store = *opened.value();
  PrintRecoveryInfo(info, out);

  // One atomic batch per trajectory: a crash mid-ingest leaves a
  // prefix of whole trajectories, never a torn one.
  size_t batches = 0;
  size_t records = 0;
  for (const traj::Trajectory& t : db.value()) {
    store::IngestBatch batch;
    batch.rows.reserve(t.size());
    for (const traj::Record& r : t.records()) {
      batch.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                            r.location.x, r.location.y});
    }
    Status st = store.Append(batch);
    if (!st.ok()) {
      out << "ingest stopped after " << batches << " trajectory(ies) ("
          << records << " record(s)): " << st.ToString() << "\n";
      return st;
    }
    ++batches;
    records += batch.rows.size();
  }
  if (args.Has("flush")) {
    FTL_RETURN_NOT_OK(store.Flush());
  }
  // With a trigger configured, pack the segments before exiting — the
  // one-shot CLI has no background thread, so compaction runs inline.
  size_t compaction_rounds = 0;
  while (store.CompactionDue()) {
    auto cr = store.CompactOnce();
    if (!cr.ok()) return cr.status();
    if (cr.value().inputs == 0) break;
    ++compaction_rounds;
    out << "compacted " << cr.value().inputs << " segment(s) ("
        << cr.value().input_records << " record(s)) into 1 in "
        << cr.value().seconds << "s: generation " << cr.value().generation
        << "\n";
  }
  out << "ingested " << batches << " trajectory(ies) (" << records
      << " record(s)) into " << dir << ": generation "
      << store.generation() << ", " << store.num_segments()
      << " segment(s), " << store.memtable_records()
      << " memtable record(s), " << store.total_records()
      << " total record(s), wal-sync="
      << store::WalSyncName(so.value().wal_sync) << "\n";
  return Status::OK();
}

Status CmdSimulate(const ArgMap& args, std::ostream& out) {
  std::string out_p = args.Get("out-p", "");
  std::string out_q = args.Get("out-q", "");
  if (out_p.empty() || out_q.empty()) {
    return Status::InvalidArgument("simulate needs --out-p and --out-q");
  }
  std::string config_name = args.Get("config", "SF");
  sim::DatasetConfig config = sim::FindConfig(config_name);
  if (config.name.empty()) {
    return Status::InvalidArgument("unknown config '" + config_name +
                                   "' (expected SA..SF or TA..TF)");
  }
  auto objects = args.GetInt("objects", 200);
  if (!objects.ok()) return objects.status();
  auto seed = args.GetInt("seed", 1);
  if (!seed.ok()) return seed.status();
  sim::DatasetPair pair =
      sim::BuildDataset(config, static_cast<size_t>(objects.value()),
                        static_cast<uint64_t>(seed.value()));
  FTL_RETURN_NOT_OK(io::WriteCsv(pair.p, out_p));
  FTL_RETURN_NOT_OK(io::WriteCsv(pair.q, out_q));
  out << "simulated " << config.name << ": wrote " << pair.p.size()
      << " trajectories (" << pair.p.TotalRecords() << " records) to "
      << out_p << ", " << pair.q.size() << " trajectories ("
      << pair.q.TotalRecords() << " records) to " << out_q << "\n";
  return Status::OK();
}

Status CmdStats(const ArgMap& args, std::ostream& out) {
  auto db = LoadDb(args, "db", out);
  if (!db.ok()) return db.status();
  out << "database: " << db.value().name() << "\n"
      << traj::ToString(traj::Summarize(db.value())) << "\n";
  return Status::OK();
}

Status CmdTrain(const ArgMap& args, std::ostream& out) {
  auto p = LoadDb(args, "p", out);
  if (!p.ok()) return p.status();
  auto q = LoadDb(args, "q", out);
  if (!q.ok()) return q.status();
  std::string out_rej = args.Get("out-rejection", "");
  std::string out_acc = args.Get("out-acceptance", "");
  if (out_rej.empty() || out_acc.empty()) {
    return Status::InvalidArgument(
        "train needs --out-rejection and --out-acceptance");
  }
  auto eo = EngineOptionsFromArgs(args);
  if (!eo.ok()) return eo.status();
  auto models = core::BuildModels(p.value(), q.value(),
                                  eo.value().training);
  if (!models.ok()) return models.status();
  FTL_RETURN_NOT_OK(io::WriteModel(models.value().rejection, out_rej));
  FTL_RETURN_NOT_OK(io::WriteModel(models.value().acceptance, out_acc));
  out << "trained models on " << p.value().size() << " x "
      << q.value().size() << " trajectories\n"
      << "rejection:  " << models.value().rejection.ToString() << "\n"
      << "acceptance: " << models.value().acceptance.ToString() << "\n";
  return Status::OK();
}

Status CmdLink(const ArgMap& args, std::ostream& out) {
  auto p = LoadDb(args, "p", out);
  if (!p.ok()) return p.status();
  auto q = LoadDb(args, "q", out);
  if (!q.ok()) return q.status();
  auto eo = EngineOptionsFromArgs(args);
  if (!eo.ok()) return eo.status();
  std::string matcher_name = args.Get("matcher", "nb");
  core::Matcher matcher;
  if (matcher_name == "nb") {
    matcher = core::Matcher::kNaiveBayes;
  } else if (matcher_name == "alpha") {
    matcher = core::Matcher::kAlphaFilter;
  } else {
    return Status::InvalidArgument("--matcher must be nb or alpha, got '" +
                                   matcher_name + "'");
  }
  auto top = args.GetInt("top", 10);
  if (!top.ok()) return top.status();
  core::BlockingMode blocking_mode = core::BlockingMode::kOff;
  core::BlockingOptions blocking_opts;
  FTL_RETURN_NOT_OK(BlockingFromArgs(args, &blocking_mode, &blocking_opts));

  core::FtlEngine engine(eo.value());
  FTL_RETURN_NOT_OK(engine.Train(p.value(), q.value()));

  // Candidate generation: build the index over Q once, reuse the
  // scratch across queries (DESIGN.md §13).
  std::unique_ptr<const core::BlockingIndex> blocking_index;
  core::BlockingScratch blocking_scratch;
  if (blocking_mode != core::BlockingMode::kOff) {
    blocking_index = std::make_unique<const core::BlockingIndex>(
        q.value(), blocking_opts);
  }

  std::vector<size_t> query_indices;
  if (args.Has("query")) {
    size_t idx = p.value().Find(args.Get("query", ""));
    if (idx == traj::TrajectoryDatabase::npos) {
      return Status::NotFound("query label '" + args.Get("query", "") +
                              "' not in P");
    }
    query_indices.push_back(idx);
  } else {
    for (size_t i = 0; i < p.value().size(); ++i) query_indices.push_back(i);
  }

  for (size_t qi : query_indices) {
    const auto& query = p.value()[qi];
    auto result = blocking_index != nullptr
                      ? engine.QueryBlocked(query, q.value(), *blocking_index,
                                            blocking_mode, matcher,
                                            &blocking_scratch)
                      : engine.Query(query, q.value(), matcher);
    if (!result.ok()) return result.status();
    if (args.Has("json")) {
      // One JSON document per query, byte-identical to what the serve
      // daemon's /v1/query endpoint returns for the same inputs (both
      // call the same engine entry point and serializer).
      out << io::QueryResultToJson(query.label(), result.value()) << "\n";
      continue;
    }
    out << query.label() << " -> " << result.value().candidates.size()
        << " candidate(s)";
    size_t shown = 0;
    for (const auto& c : result.value().candidates) {
      if (shown++ >= static_cast<size_t>(top.value())) break;
      out << (shown == 1 ? ": " : ", ") << c.label << "("
          << FormatDouble(c.score, 4) << ")";
    }
    out << "\n";
  }
  return Status::OK();
}

Status CmdExport(const ArgMap& args, std::ostream& out) {
  auto db = LoadDb(args, "db", out);
  if (!db.ok()) return db.status();
  std::string path = args.Get("out", "");
  if (path.empty()) return Status::InvalidArgument("export needs --out");
  FTL_RETURN_NOT_OK(io::WriteGeoJson(db.value(), path));
  out << "wrote " << db.value().size() << " features to " << path << "\n";
  return Status::OK();
}

Status CmdValidate(const ArgMap& args, std::ostream& out) {
  auto db = LoadDb(args, "db", out);
  if (!db.ok()) return db.status();
  auto report = traj::ValidateDatabase(db.value());
  out << report.ToString() << "\n";
  if (args.Has("sanitized-out")) {
    auto clean = traj::Sanitize(db.value());
    FTL_RETURN_NOT_OK(io::WriteCsv(clean, args.Get("sanitized-out", "")));
    out << "sanitized copy (" << clean.size() << " trajectories, "
        << clean.TotalRecords() << " records) written to "
        << args.Get("sanitized-out", "") << "\n";
  }
  return Status::OK();
}

Status CmdDiagnose(const ArgMap& args, std::ostream& out) {
  auto p = LoadDb(args, "p", out);
  if (!p.ok()) return p.status();
  auto q = LoadDb(args, "q", out);
  if (!q.ok()) return q.status();
  auto eo = EngineOptionsFromArgs(args);
  if (!eo.ok()) return eo.status();
  auto models = core::BuildModels(p.value(), q.value(),
                                  eo.value().training);
  if (!models.ok()) return models.status();
  auto diag = core::DiagnoseModels(models.value());
  out << diag.ToString() << "\n";
  out << "rejection:  " << models.value().rejection.ToString() << "\n";
  out << "acceptance: " << models.value().acceptance.ToString() << "\n";
  return Status::OK();
}

Status CmdCalibrate(const ArgMap& args, std::ostream& out) {
  auto p = LoadDb(args, "p", out);
  if (!p.ok()) return p.status();
  auto q = LoadDb(args, "q", out);
  if (!q.ok()) return q.status();
  auto eo = EngineOptionsFromArgs(args);
  if (!eo.ok()) return eo.status();
  std::string matcher_name = args.Get("matcher", "nb");
  core::Matcher matcher = matcher_name == "alpha"
                              ? core::Matcher::kAlphaFilter
                              : core::Matcher::kNaiveBayes;
  auto budget = args.GetDouble("budget", 10.0);
  if (!budget.ok()) return budget.status();
  auto queries = args.GetInt("queries", 50);
  if (!queries.ok()) return queries.status();

  core::FtlEngine engine(eo.value());
  FTL_RETURN_NOT_OK(engine.Train(p.value(), q.value()));
  eval::CalibrationTarget target;
  target.max_mean_candidates = budget.value();
  eval::WorkloadOptions wo;
  wo.num_queries = static_cast<size_t>(queries.value());
  auto result = eval::AutoCalibrate(engine, p.value(), q.value(), matcher,
                                    target, wo);
  if (!result.ok()) return result.status();
  const auto& r = result.value();
  if (matcher == core::Matcher::kNaiveBayes) {
    out << "calibrated phi_r=" << FormatDouble(r.phi_r, 6) << "\n";
  } else {
    out << "calibrated alpha1=" << FormatDouble(r.alpha1, 6)
        << " alpha2=" << FormatDouble(r.alpha2, 6) << "\n";
  }
  out << "mean candidates/query " << FormatDouble(r.mean_candidates, 2)
      << " (budget " << FormatDouble(budget.value(), 1)
      << "), perceptiveness " << FormatDouble(r.perceptiveness, 3)
      << ", selectiveness " << FormatDouble(r.selectiveness, 5) << "\n";
  if (!r.feasible) {
    out << "warning: budget infeasible -- even the strictest grid point "
           "exceeds "
        << FormatDouble(budget.value(), 1)
        << " mean candidates/query; returned setting is the strictest "
           "available\n";
  }
  return Status::OK();
}

Status CmdEnrich(const ArgMap& args, std::ostream& out) {
  auto p = LoadDb(args, "p", out);
  if (!p.ok()) return p.status();
  auto q = LoadDb(args, "q", out);
  if (!q.ok()) return q.status();
  size_t pi = p.value().Find(args.Get("query", ""));
  if (pi == traj::TrajectoryDatabase::npos) {
    return Status::NotFound("query label '" + args.Get("query", "") +
                            "' not in P");
  }
  size_t qi = q.value().Find(args.Get("candidate", ""));
  if (qi == traj::TrajectoryDatabase::npos) {
    return Status::NotFound("candidate label '" +
                            args.Get("candidate", "") + "' not in Q");
  }
  core::EnrichmentOptions opts;
  opts.p_source_name = "P";
  opts.q_source_name = "Q";
  auto vmax = args.GetDouble("vmax-kph", 120.0);
  if (!vmax.ok()) return vmax.status();
  opts.vmax_mps = geo::KphToMps(vmax.value());
  auto enriched = core::Enrich(p.value()[pi], q.value()[qi], opts);
  if (!enriched.ok()) return enriched.status();
  out << core::ToTableString(enriched.value(), 30);
  out << "densification x" +
             FormatDouble(enriched.value().densification_factor, 2)
      << ", incompatible mutual segments "
      << enriched.value().incompatible_mutual_segments << "\n";
  return Status::OK();
}

Status CmdConvert(const ArgMap& args, std::ostream& out) {
  auto db = LoadDb(args, "in", out);
  if (!db.ok()) return db.status();
  std::string out_path = args.Get("out", "");
  if (out_path.empty()) {
    return Status::InvalidArgument("convert needs --out");
  }
  std::string to = args.Get("to", "");
  if (to.empty()) {
    // Infer the target from the output extension; FTB is the default
    // (the whole point of converting).
    bool csv = out_path.size() >= 4 &&
               out_path.compare(out_path.size() - 4, 4, ".csv") == 0;
    to = csv ? "csv" : "ftb";
  }
  if (to == "ftb") {
    traj::FlatDatabase flat = traj::FlatDatabase::FromDatabase(db.value());
    FTL_RETURN_NOT_OK(io::WriteFtb(flat, out_path));
    out << "wrote " << flat.size() << " trajectories ("
        << flat.TotalRecords() << " records) to " << out_path << " (FTB)\n";
  } else if (to == "csv") {
    FTL_RETURN_NOT_OK(io::WriteCsv(db.value(), out_path));
    out << "wrote " << db.value().size() << " trajectories ("
        << db.value().TotalRecords() << " records) to " << out_path
        << " (CSV)\n";
  } else {
    return Status::InvalidArgument("--to expects ftb|csv, got '" + to + "'");
  }
  return Status::OK();
}

Status CmdServe(const ArgMap& args, std::ostream& out) {
  auto p = LoadDb(args, "p", out);
  if (!p.ok()) return p.status();

  // Candidate side: either static shards (--ftb/--q, merged in flag
  // order) or a live store (--store DIR) that /v1/ingest appends to.
  const std::string store_dir = args.Get("store", "");
  std::vector<std::string> shard_paths = args.GetAll("ftb");
  for (const auto& path : args.GetAll("q")) shard_paths.push_back(path);
  if (store_dir.empty() && shard_paths.empty()) {
    return Status::InvalidArgument(
        "serve needs --store DIR or at least one --ftb (or --q) shard");
  }
  if (!store_dir.empty() && !shard_paths.empty()) {
    return Status::InvalidArgument(
        "--store and --ftb/--q are mutually exclusive");
  }
  traj::TrajectoryDatabase q("Q");
  for (const auto& path : shard_paths) {
    auto shard = LoadDbFromPath(path, args, "ftb", out);
    if (!shard.ok()) return shard.status();
    if (shard_paths.size() == 1) {
      q = std::move(shard).value();
    } else {
      for (const auto& t : shard.value()) {
        Status st = q.Add(t);
        if (!st.ok()) {
          return Status::InvalidArgument("merging shard '" + path +
                                         "': " + st.message());
        }
      }
    }
  }

  auto eo = EngineOptionsFromArgs(args);
  if (!eo.ok()) return eo.status();
  // Worker-pool parallelism across requests, serial inside each query;
  // --threads sizes the pool, not the engine.
  size_t workers = eo.value().num_threads;
  if (!args.Has("threads")) workers = 0;  // 0 = hardware concurrency
  core::EngineOptions engine_opts = eo.value();
  engine_opts.num_threads = 1;

  serve::ServeOptions so;
  std::string listen = args.Get("listen", "127.0.0.1:8080");
  size_t colon = listen.rfind(':');
  int64_t port = 0;
  if (colon == std::string::npos || colon == 0 ||
      !ParseInt64(listen.substr(colon + 1), &port) || port < 0 ||
      port > 65535) {
    return Status::InvalidArgument("--listen expects HOST:PORT, got '" +
                                   listen + "'");
  }
  so.host = listen.substr(0, colon);
  so.port = static_cast<int>(port);
  so.num_threads = workers;
  auto max_queue = args.GetInt("max-queue", 128);
  if (!max_queue.ok()) return max_queue.status();
  if (max_queue.value() < 1) {
    return Status::InvalidArgument("--max-queue must be at least 1");
  }
  so.max_queue = static_cast<size_t>(max_queue.value());
  auto deadline_ms = args.GetInt("request-deadline-ms", 0);
  if (!deadline_ms.ok()) return deadline_ms.status();
  if (deadline_ms.value() < 0) {
    return Status::InvalidArgument("--request-deadline-ms must be >= 0");
  }
  so.request_deadline_ms = deadline_ms.value();
  auto qthreads = args.GetInt("query-threads", 1);
  if (!qthreads.ok()) return qthreads.status();
  if (qthreads.value() < 1) {
    return Status::InvalidArgument("--query-threads must be at least 1");
  }
  if (qthreads.value() > 1 && store_dir.empty()) {
    return Status::InvalidArgument("--query-threads requires --store");
  }
  so.store_query_threads = static_cast<size_t>(qthreads.value());
  if (!args.Has("threads") && so.store_query_threads > 1) {
    // Keep workers x query-threads within the machine when --threads is
    // left to default.
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    size_t sized = hw / so.store_query_threads;
    so.num_threads = sized > 0 ? sized : 1;
  }
  std::string matcher_name = args.Get("matcher", "nb");
  if (matcher_name == "nb") {
    so.default_matcher = core::Matcher::kNaiveBayes;
  } else if (matcher_name == "alpha") {
    so.default_matcher = core::Matcher::kAlphaFilter;
  } else {
    return Status::InvalidArgument("--matcher must be nb or alpha, got '" +
                                   matcher_name + "'");
  }
  // Engine mode applies --blocking via the server's index over the
  // static Q; store mode applies it via StoreOptionsFromArgs below
  // (per-segment indices inside the snapshots).
  FTL_RETURN_NOT_OK(BlockingFromArgs(args, &so.blocking_mode, &so.blocking));

  core::FtlEngine engine(engine_opts);

  // SIGTERM / SIGINT trigger the same graceful drain as
  // POST /admin/shutdown: stop accepting, finish what was admitted.
  static std::atomic<int> stop_flag{0};
  stop_flag.store(0);
  serve::InstallShutdownSignalHandlers(&stop_flag);
  so.stop_flag = &stop_flag;

  if (!store_dir.empty()) {
    // Store mode is two-phase: bind first so probes reach the process
    // (/readyz answers 503), then run the possibly-long recovery and
    // training behind the readiness gate.
    auto sto = StoreOptionsFromArgs(args);
    if (!sto.ok()) return sto.status();
    std::unique_ptr<store::Store> store =
        store::Store::Create(store_dir, sto.value());
    so.start_ready = false;
    serve::FtlServer server(so, &engine, &p.value(), store.get());
    // Background compaction (--compact-trigger): started only after
    // recovery succeeds; Stop() joins any in-flight round on exit.
    store::Compactor compactor(store.get());
    FTL_RETURN_NOT_OK(server.Start());
    out << "listening on " << so.host << ":" << server.port()
        << " (store=" << store_dir << ", warming up: /readyz is 503)\n";
    out.flush();
    store::RecoveryInfo info;
    Status st = store->Recover(&info);
    if (st.ok()) {
      PrintRecoveryInfo(info, out);
      traj::TrajectoryDatabase q0 = store->MaterializeAll("store");
      st = engine.Train(p.value(), q0);
      if (st.ok()) {
        if (sto.value().compact_trigger > 0) compactor.Start();
        server.MarkReady();
        out << "ready: serving |P|=" << p.value().size() << " |Q|="
            << q0.size() << " (generation " << store->generation() << ", "
            << store->num_segments() << " segment(s), wal-sync="
            << store::WalSyncName(sto.value().wal_sync)
            << ", query-threads=" << so.store_query_threads
            << ", compact-trigger=" << sto.value().compact_trigger << ")\n";
        out.flush();
      }
    }
    if (!st.ok()) {
      // Warm-up failed: drain whatever connected and report the error
      // through the normal exit-code path.
      server.Shutdown();
      server.Wait();
      return st;
    }
    server.Wait();
    compactor.Stop();
    out << "drained " << server.requests_handled() << " request(s) ("
        << compactor.rounds() << " compaction round(s)); bye\n";
    return Status::OK();
  }

  FTL_RETURN_NOT_OK(engine.Train(p.value(), q));
  serve::FtlServer server(so, &engine, &p.value(), &q);
  FTL_RETURN_NOT_OK(server.Start());
  out << "serving |P|=" << p.value().size() << " |Q|=" << q.size() << " on "
      << so.host << ":" << server.port() << " (workers="
      << (so.num_threads == 0 ? std::thread::hardware_concurrency()
                              : so.num_threads)
      << ", max-queue=" << so.max_queue << ", request-deadline-ms="
      << so.request_deadline_ms << ", matcher=" << matcher_name << ")\n";
  out.flush();
  server.Wait();
  out << "drained " << server.requests_handled() << " request(s); bye\n";
  return Status::OK();
}

Status CmdMetrics(const ArgMap& args, std::ostream& out) {
  std::string format = args.Get("format", "prom");
  if (format == "prom") {
    out << obs::DumpPrometheus();
  } else if (format == "json") {
    out << obs::DumpJson() << "\n";
  } else {
    return Status::InvalidArgument("--format expects prom|json, got '" +
                                   format + "'");
  }
  return Status::OK();
}

namespace {

/// True when `path` names a Prometheus-text output (.prom/.txt);
/// everything else gets JSON.
bool WantsPrometheus(const std::string& path) {
  auto ends_with = [&path](const char* suffix) {
    std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".prom") || ends_with(".txt");
}

/// Writes the metrics snapshot for --metrics-out. Uses a plain ofstream
/// rather than io::WriteTextFile so armed IO failpoints cannot block the
/// observability channel that would report them.
Status WriteMetricsSnapshot(const std::string& path) {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) {
    return Status::IOError("cannot open metrics output '" + path + "'");
  }
  if (WantsPrometheus(path)) {
    f << obs::DumpPrometheus();
  } else {
    f << obs::DumpJson() << "\n";
  }
  f.flush();
  if (!f) {
    return Status::IOError("failed writing metrics output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out) {
  return RunCli(args, out, out);
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  // Honor FTL_FAILPOINTS before anything fallible runs, so injected
  // faults cover the whole command.
  Status env = failpoint::InitFromEnv();
  if (!env.ok()) {
    err << "error: " << env.ToString() << "\n";
    return ExitCodeForStatus(env);
  }
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << UsageText();
    return args.empty() ? 1 : 0;
  }
  std::string cmd = args[0];
  auto parsed = ArgMap::Parse({args.begin() + 1, args.end()});
  if (!parsed.ok()) {
    err << "error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  if (parsed.value().Has("failpoints")) {
    Status fp = failpoint::Configure(parsed.value().Get("failpoints", ""));
    if (!fp.ok()) {
      err << "error: " << fp.ToString() << "\n";
      return ExitCodeForStatus(fp);
    }
  }
  Status st;
  if (cmd == "simulate") {
    st = CmdSimulate(parsed.value(), out);
  } else if (cmd == "stats") {
    st = CmdStats(parsed.value(), out);
  } else if (cmd == "train") {
    st = CmdTrain(parsed.value(), out);
  } else if (cmd == "link") {
    st = CmdLink(parsed.value(), out);
  } else if (cmd == "export") {
    st = CmdExport(parsed.value(), out);
  } else if (cmd == "validate") {
    st = CmdValidate(parsed.value(), out);
  } else if (cmd == "diagnose") {
    st = CmdDiagnose(parsed.value(), out);
  } else if (cmd == "calibrate") {
    st = CmdCalibrate(parsed.value(), out);
  } else if (cmd == "enrich") {
    st = CmdEnrich(parsed.value(), out);
  } else if (cmd == "convert") {
    st = CmdConvert(parsed.value(), out);
  } else if (cmd == "metrics") {
    st = CmdMetrics(parsed.value(), out);
  } else if (cmd == "ingest") {
    st = CmdIngest(parsed.value(), out);
  } else if (cmd == "serve") {
    st = CmdServe(parsed.value(), out);
  } else {
    err << "error: unknown command '" << cmd << "'\n" << UsageText();
    return 1;
  }
  // The snapshot is written even when the command failed: counters
  // explaining the failure (quarantines, failpoint trips, truncations)
  // are exactly what a post-mortem wants.
  std::string metrics_out = parsed.value().Get("metrics-out", "");
  if (!metrics_out.empty()) {
    Status ms = WriteMetricsSnapshot(metrics_out);
    if (!ms.ok()) {
      err << "error: " << ms.ToString() << "\n";
      if (st.ok()) return ExitCodeForStatus(ms);
    }
  }
  if (!st.ok()) {
    err << "error: " << st.ToString() << "\n";
    return ExitCodeForStatus(st);
  }
  return 0;
}

}  // namespace ftl::tools
