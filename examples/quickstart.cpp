// Quickstart: the smallest end-to-end use of the FTL library.
//
// 1. Simulate a city population that exposes movement to two services
//    (eponymous CDR records + anonymous transit-card taps).
// 2. Train the rejection/acceptance compatibility models.
// 3. Pick one anonymous card and ask: which phone user carries it?
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "ftl/ftl.h"

int main() {
  using namespace ftl;

  // --- 1. Data: 120 people, 10 days, two observation channels. --------
  sim::PopulationOptions pop;
  pop.num_persons = 120;
  pop.duration_days = 10;
  pop.cdr_accesses_per_day = 12.0;    // calls/SMS, cell-tower accuracy
  pop.transit_accesses_per_day = 5.0; // card taps, stop-level accuracy
  pop.seed = 42;
  sim::PopulationData data = sim::SimulatePopulation(pop);
  std::printf("Simulated %zu CDR trajectories, %zu card trajectories\n",
              data.cdr_db.size(), data.transit_db.size());

  // --- 2. Train the engine (Vmax = 120 kph, 1-minute buckets). --------
  core::EngineOptions opts;
  opts.training.vmax_mps = geo::KphToMps(120.0);
  opts.training.time_unit_seconds = 60;
  opts.training.horizon_units = 40;
  opts.alpha = {0.01, 0.2};        // (alpha1, alpha2)-filtering levels
  opts.naive_bayes.phi_r = 0.02;   // prior that a random pair matches
  core::FtlEngine engine(opts);
  Status st = engine.Train(data.cdr_db, data.transit_db);
  if (!st.ok()) {
    std::printf("training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- 3. Link: take one card, search the CDR database. ---------------
  const traj::Trajectory& card = data.transit_db[7];
  std::printf("\nQuery: anonymous card '%s' (%zu taps)\n",
              card.label().c_str(), card.size());

  for (auto matcher :
       {core::Matcher::kAlphaFilter, core::Matcher::kNaiveBayes}) {
    const char* name =
        matcher == core::Matcher::kAlphaFilter ? "(a1,a2)-filtering"
                                               : "Naive-Bayes";
    auto result = engine.Query(card, data.cdr_db, matcher);
    if (!result.ok()) {
      std::printf("query failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s returned %zu candidate(s), selectiveness %.4f\n",
                name, result.value().candidates.size(),
                result.value().selectiveness);
    size_t shown = 0;
    for (const auto& c : result.value().candidates) {
      bool truth = data.cdr_db[c.index].owner() == card.owner();
      std::printf("  #%zu %-10s score=%.4f p1=%.4f p2=%.4f  %s\n",
                  ++shown, c.label.c_str(), c.score, c.p1, c.p2,
                  truth ? "<-- true owner" : "");
      if (shown >= 5) break;
    }
  }
  return 0;
}
