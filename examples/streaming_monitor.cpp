// Live linking monitor: records arrive as a stream and an analyst
// watches how the belief about a target identity sharpens over time —
// the online version of the paper's investigation scenarios.
//
// Build & run:  ./build/examples/streaming_monitor

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ftl/ftl.h"

int main() {
  using namespace ftl;

  // Simulate the population whose records will be replayed as a stream.
  sim::PopulationOptions pop;
  pop.num_persons = 80;
  pop.duration_days = 10;
  pop.cdr_accesses_per_day = 12.0;
  pop.transit_accesses_per_day = 8.0;
  pop.seed = 77;
  sim::PopulationData data = sim::SimulatePopulation(pop);

  // Train compatibility models up front (in practice: on historical
  // data).
  core::ModelTrainingOptions to;
  to.horizon_units = 40;
  auto models = core::BuildModels(data.cdr_db, data.transit_db, to);
  if (!models.ok()) {
    std::printf("training failed: %s\n",
                models.status().ToString().c_str());
    return 1;
  }
  core::EvidenceOptions ev;
  ev.vmax_mps = to.vmax_mps;
  ev.time_unit_seconds = to.time_unit_seconds;
  ev.horizon_units = to.horizon_units;

  // Watch one phone identity; replay every transit record and the
  // watch's own CDR records in global time order.
  const traj::Trajectory& watch = data.cdr_db[11];
  core::StreamingLinker linker(models.value(), ev);
  Status st = linker.AddWatch(watch.label());
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Watching '%s' (%zu CDR records over %lld days)\n",
              watch.label().c_str(), watch.size(),
              static_cast<long long>(watch.DurationSeconds() / 86400));

  struct Event {
    traj::Timestamp t;
    core::StreamSide side;
    const std::string* label;
    traj::Record rec;
  };
  std::vector<Event> events;
  for (const auto& r : watch.records()) {
    events.push_back({r.t, core::StreamSide::kQuery, &watch.label(), r});
  }
  for (const auto& cand : data.transit_db) {
    for (const auto& r : cand.records()) {
      events.push_back(
          {r.t, core::StreamSide::kCandidate, &cand.label(), r});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });

  // Replay, reporting the top candidate at the end of each day.
  int64_t next_report = 86400;
  std::printf("\n%-6s %-12s %-10s %-8s %-8s\n", "day", "top candidate",
              "score", "#segs", "truth?");
  for (const auto& e : events) {
    st = linker.Ingest(e.side, *e.label, e.rec);
    if (!st.ok()) {
      std::printf("ingest failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (e.t >= next_report) {
      auto ranked = linker.RankedCandidates(watch.label());
      if (ranked.ok() && !ranked.value().empty()) {
        const auto& top = ranked.value().front();
        size_t idx = data.transit_db.Find(top.candidate_label);
        bool truth = idx != traj::TrajectoryDatabase::npos &&
                     data.transit_db[idx].owner() == watch.owner();
        std::printf("%-6lld %-12s %-10.4f %-8zu %s\n",
                    static_cast<long long>(next_report / 86400),
                    top.candidate_label.c_str(), top.score,
                    top.informative_segments, truth ? "yes" : "no");
      }
      next_report += 86400;
    }
  }
  std::printf("\n(%lld records ingested; belief sharpens as evidence "
              "accumulates)\n",
              static_cast<long long>(linker.ingested()));
  return 0;
}
