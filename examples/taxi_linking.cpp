// Taxi database linking — the paper's actual evaluation setting.
//
// A taxi company keeps two independent databases: periodic status *logs*
// and per-trip *records*. FTL links a (down-sampled, anonymized) log
// trajectory to the trip trajectory of the same taxi, demonstrating
// linking across two channels of one fleet.
//
// Build & run:  ./build/examples/taxi_linking

#include <cstdio>

#include "ftl/ftl.h"

int main() {
  using namespace ftl;

  // SF-style configuration: rate 0.01 logs vs 0.08 trips, 21 days.
  sim::DatasetConfig config = sim::FindConfig("SF");
  sim::DatasetPair pair = sim::BuildDataset(config, /*num_objects=*/200,
                                            /*seed=*/99);
  auto sp = traj::Summarize(pair.p);
  auto sq = traj::Summarize(pair.q);
  std::printf("Dataset %s: |P|db=%zu (mean %.1f recs), |Q|db=%zu (mean "
              "%.1f recs)\n",
              pair.name.c_str(), pair.p.size(), sp.mean_size, pair.q.size(),
              sq.mean_size);

  core::EngineOptions opts;
  opts.training.vmax_mps = geo::KphToMps(120.0);
  opts.training.horizon_units = 60;
  opts.alpha = {0.001, 0.2};
  opts.naive_bayes.phi_r = 0.01;
  opts.num_threads = 4;  // parallel batch queries
  core::FtlEngine engine(opts);
  Status st = engine.Train(pair.p, pair.q);
  if (!st.ok()) {
    std::printf("training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  eval::WorkloadOptions wo;
  wo.num_queries = 50;
  wo.seed = 4;
  auto workload = eval::MakeWorkload(pair.p, pair.q, wo);
  std::printf("Running %zu queries against %zu candidates...\n",
              workload.queries.size(), pair.q.size());

  Stopwatch sw;
  auto results = engine.BatchQuery(workload.queries, pair.q,
                                   core::Matcher::kNaiveBayes);
  if (!results.ok()) {
    std::printf("query failed: %s\n", results.status().ToString().c_str());
    return 1;
  }
  double secs = sw.ElapsedSeconds();
  auto metrics =
      eval::ComputeMetrics(results.value(), workload.owners, pair.q);
  std::printf("perceptiveness  %.3f\n", metrics.perceptiveness);
  std::printf("selectiveness   %.5f (mean %.1f candidates/query)\n",
              metrics.selectiveness, metrics.mean_candidates);
  std::printf("throughput      %.1f queries/s (%zu threads)\n",
              static_cast<double>(workload.queries.size()) / secs,
              opts.num_threads);

  // Show a few linked pairs.
  size_t shown = 0;
  for (size_t i = 0; i < results.value().size() && shown < 5; ++i) {
    const auto& cands = results.value()[i].candidates;
    if (cands.empty()) continue;
    bool truth = pair.q[cands[0].index].owner() == workload.owners[i];
    std::printf("  %-8s -> %-8s score=%.4f %s\n",
                workload.queries[i].label().c_str(),
                cands[0].label.c_str(), cands[0].score,
                truth ? "[correct]" : "[wrong]");
    ++shown;
  }
  return 0;
}
