// Disease contact tracing — the paper's Example 1.
//
// A person is found infected and rode buses before diagnosis. The health
// agency must find other commuters who boarded the same buses. Commuter
// cards are anonymous, so:
//   step 1: find card IDs that tapped near the infected person's taps
//           (co-travel detection in the anonymous transit database),
//   step 2: FTL-link those card trajectories against the eponymous CDR
//           database to recover identities for follow-up.
//
// Build & run:  ./build/examples/disease_contact_tracing

#include <cstdio>
#include <vector>

#include "ftl/ftl.h"

namespace {

/// Step 1: cards with >= `min_hits` taps within `radius` meters and
/// `window` seconds of the index case's taps (rode the same vehicles).
std::vector<size_t> FindCoTravelers(const ftl::traj::Trajectory& index_case,
                                    const ftl::traj::TrajectoryDatabase& db,
                                    double radius, int64_t window,
                                    size_t min_hits) {
  std::vector<size_t> out;
  for (size_t i = 0; i < db.size(); ++i) {
    const auto& cand = db[i];
    if (cand.label() == index_case.label()) continue;
    size_t hits = 0;
    for (const auto& a : index_case.records()) {
      for (const auto& b : cand.records()) {
        if (ftl::traj::TimeDiff(a, b) <= window &&
            ftl::traj::Dist(a, b) <= radius) {
          ++hits;
          break;
        }
      }
    }
    if (hits >= min_hits) out.push_back(i);
  }
  return out;
}

}  // namespace

int main() {
  using namespace ftl;

  // A denser population so co-travel actually happens.
  sim::PopulationOptions pop;
  pop.num_persons = 150;
  pop.duration_days = 7;
  pop.cdr_accesses_per_day = 14.0;
  pop.transit_accesses_per_day = 6.0;
  pop.seed = 7;
  sim::PopulationData data = sim::SimulatePopulation(pop);

  // The index case: transit card #3.
  const traj::Trajectory& infected_card = data.transit_db[3];
  std::printf("Index case: card '%s' with %zu taps over %lld days\n",
              infected_card.label().c_str(), infected_card.size(),
              static_cast<long long>(infected_card.DurationSeconds() /
                                     86400));

  // Step 1 — co-traveling cards (same stop within 500 m / 10 min).
  auto co = FindCoTravelers(infected_card, data.transit_db,
                            /*radius=*/500.0, /*window=*/600,
                            /*min_hits=*/1);
  std::printf("Step 1: %zu co-traveling card(s) detected\n", co.size());

  // Step 2 — FTL-link each co-traveler card to the CDR database.
  core::EngineOptions opts;
  opts.training.horizon_units = 40;
  opts.naive_bayes.phi_r = 0.02;
  core::FtlEngine engine(opts);
  Status st = engine.Train(data.cdr_db, data.transit_db);
  if (!st.ok()) {
    std::printf("training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  size_t identified = 0, correct = 0;
  for (size_t idx : co) {
    const auto& card = data.transit_db[idx];
    auto result = engine.Query(card, data.cdr_db,
                               core::Matcher::kNaiveBayes);
    if (!result.ok() || result.value().candidates.empty()) {
      std::printf("  card %-10s -> no confident identity\n",
                  card.label().c_str());
      continue;
    }
    const auto& best = result.value().candidates.front();
    bool truth = data.cdr_db[best.index].owner() == card.owner();
    ++identified;
    if (truth) ++correct;
    std::printf(
        "  card %-10s -> phone %-10s (score %.4f, %zu candidate(s)) %s\n",
        card.label().c_str(), best.label.c_str(), best.score,
        result.value().candidates.size(), truth ? "[correct]" : "[wrong]");
  }
  std::printf(
      "Step 2: identified %zu of %zu co-travelers, %zu correct top-1\n",
      identified, co.size(), correct);
  return 0;
}
