// Privacy audit: a data holder about to release an "anonymized"
// trajectory database measures its re-identification risk under the FTL
// attack, then checks how much defense is needed — operationalizing the
// paper's closing privacy concern.
//
// Build & run:  ./build/examples/privacy_audit

#include <cstdio>

#include "ftl/ftl.h"

int main() {
  using namespace ftl;

  // The world: people expose movement to a phone operator (adversary's
  // side) and a transit operator (the releasing party).
  sim::PopulationOptions pop;
  pop.num_persons = 150;
  pop.duration_days = 10;
  pop.cdr_accesses_per_day = 12.0;
  pop.transit_accesses_per_day = 6.0;
  pop.seed = 555;
  sim::PopulationData data = sim::SimulatePopulation(pop);

  privacy::AttackOptions attack;
  attack.engine.training.horizon_units = 40;
  attack.engine.naive_bayes.phi_r = 0.02;
  attack.workload.num_queries = 60;
  attack.workload.seed = 3;

  std::printf("Auditing a release of %zu anonymized card trajectories\n"
              "against an adversary holding %zu eponymous phone "
              "trajectories.\n\n",
              data.transit_db.size(), data.cdr_db.size());

  auto report =
      privacy::EvaluateLinkageRisk(data.cdr_db, data.transit_db, attack);
  if (!report.ok()) {
    std::printf("audit failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("Raw release:      %.0f%% of identities re-identified "
              "top-1 (%.0f%% within the candidate set)\n",
              100 * report.value().top1_accuracy,
              100 * report.value().perceptiveness);

  // Try escalating spatial cloaking until top-1 risk falls below 10%.
  Rng rng(9);
  for (double grid : {2000.0, 5000.0, 10000.0, 20000.0}) {
    auto released = privacy::SpatialCloaking(data.transit_db, grid);
    auto defended =
        privacy::EvaluateLinkageRisk(data.cdr_db, released, attack);
    if (!defended.ok()) continue;
    std::printf("Cloaked %4.1f km:  %.0f%% top-1, %.0f%% in set, "
                "mean %.1f candidates\n",
                grid / 1000.0, 100 * defended.value().top1_accuracy,
                100 * defended.value().perceptiveness,
                defended.value().mean_candidates);
    if (defended.value().top1_accuracy < 0.10) {
      std::printf("\n-> %0.1f km spatial cloaking pushes top-1 "
                  "re-identification below 10%%.\n",
                  grid / 1000.0);
      std::printf("   (Note what it costs: locations coarser than most "
                  "analytic uses tolerate —\n    sparsity alone is NOT "
                  "privacy, which is the paper's warning.)\n");
      break;
    }
  }
  return 0;
}
