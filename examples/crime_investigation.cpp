// Crime investigation — the paper's Example 2.
//
// Violence erupts inside a train station; the suspect tapped a commuting
// card at the station around 12:11 pm. Riding records narrow the pool to
// the cards that tapped there in that window, but cards are anonymous.
// The police use FTL against CDR data to shortlist identifiable mobile
// users.
//
// Build & run:  ./build/examples/crime_investigation

#include <cstdio>
#include <vector>

#include "ftl/ftl.h"

int main() {
  using namespace ftl;

  sim::PopulationOptions pop;
  pop.num_persons = 200;
  pop.duration_days = 7;
  pop.cdr_accesses_per_day = 14.0;
  pop.transit_accesses_per_day = 6.0;
  pop.seed = 2016;
  sim::PopulationData data = sim::SimulatePopulation(pop);

  // The "station": a real tap of some unlucky commuter on day 3,
  // ~12:11 pm. We look it up so the scenario is guaranteed non-empty.
  traj::Timestamp noon_day3 = 3 * 86400 + 12 * 3600 + 11 * 60;
  geo::Point station{};
  traj::Timestamp incident_t = 0;
  bool found = false;
  for (const auto& card : data.transit_db) {
    for (const auto& r : card.records()) {
      if (std::llabs(static_cast<long long>(r.t - noon_day3)) < 6 * 3600) {
        station = r.location;
        incident_t = r.t;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) {
    std::printf("no tap near the incident window; rerun with new seed\n");
    return 1;
  }
  std::printf("Incident at t=%lld near (%.0f, %.0f)\n",
              static_cast<long long>(incident_t), station.x, station.y);

  // Step 1 — candidate cards: tapped within 300 m and 15 minutes.
  std::vector<size_t> suspects;
  for (size_t i = 0; i < data.transit_db.size(); ++i) {
    for (const auto& r : data.transit_db[i].records()) {
      if (std::llabs(static_cast<long long>(r.t - incident_t)) <= 900 &&
          geo::Distance(r.location, station) <= 300.0) {
        suspects.push_back(i);
        break;
      }
    }
  }
  std::printf("Step 1: %zu card(s) tapped at the station in the window\n",
              suspects.size());

  // Step 2 — FTL each suspect card against the CDR database.
  core::EngineOptions opts;
  opts.training.horizon_units = 40;
  opts.alpha = {0.005, 0.2};
  core::FtlEngine engine(opts);
  Status st = engine.Train(data.cdr_db, data.transit_db);
  if (!st.ok()) {
    std::printf("training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  for (size_t idx : suspects) {
    const auto& card = data.transit_db[idx];
    auto result =
        engine.Query(card, data.cdr_db, core::Matcher::kAlphaFilter);
    if (!result.ok()) continue;
    std::printf("  card %-10s -> %zu possible identit(ies):",
                card.label().c_str(), result.value().candidates.size());
    size_t shown = 0;
    for (const auto& c : result.value().candidates) {
      bool truth = data.cdr_db[c.index].owner() == card.owner();
      std::printf(" %s(%.3f)%s", c.label.c_str(), c.score,
                  truth ? "*" : "");
      if (++shown >= 3) break;
    }
    std::printf("   (* = ground truth)\n");
  }
  return 0;
}
