// Multi-source identity fusion — the paper's future-work vision of
// "fuzzy linking among several sources of trajectory data".
//
// Three services observe one population: a phone operator (cell-grid
// accuracy), a transit operator, and a payments provider. Pairwise FTL
// links are reconciled into identity clusters (one trajectory per
// source per person), and each complete identity is merged into an
// enriched timeline — the paper's Figure 2 at population scale.
//
// Build & run:  ./build/examples/multi_source_fusion

#include <cstdio>
#include <vector>

#include "ftl/ftl.h"

int main() {
  using namespace ftl;

  // --- Simulate one population observed by three services. -----------
  const size_t kPersons = 60;
  const int64_t kSpan = 10 * 86400;
  sim::CityModel city = sim::SingaporeLike();
  Rng master(31337);
  std::vector<traj::TrajectoryDatabase> dbs(3);
  const char* names[3] = {"cdr", "transit", "payments"};
  double rates_per_day[3] = {14.0, 8.0, 5.0};
  sim::NoiseModel noises[3] = {
      {0.0, 500.0, 0},  // CDR: cell-tower grid
      {20.0, 0.0, 0},   // transit: stop-level GPS
      {40.0, 0.0, 0},   // payments: merchant location
  };
  for (int s = 0; s < 3; ++s) dbs[s].set_name(names[s]);
  for (size_t i = 0; i < kPersons; ++i) {
    Rng rng = master.Fork();
    auto path = sim::GenerateWaypointPath(&rng, city, 0, kSpan,
                                          {3.5 * 3600.0, 6000.0, 0.1});
    for (int s = 0; s < 3; ++s) {
      auto recs = sim::SamplePoisson(&rng, path,
                                     rates_per_day[s] / 86400.0,
                                     noises[s]);
      (void)dbs[s].Add(traj::Trajectory(
          std::string(names[s]) + "-" + std::to_string(i),
          static_cast<traj::OwnerId>(i), std::move(recs)));
    }
  }
  std::printf("Population of %zu persons observed by 3 services "
              "(%zu + %zu + %zu records)\n",
              kPersons, dbs[0].TotalRecords(), dbs[1].TotalRecords(),
              dbs[2].TotalRecords());

  // --- Pairwise FTL between every pair of sources. -------------------
  core::EngineOptions eo;
  eo.training.horizon_units = 40;
  eo.naive_bayes.phi_r = 0.02;
  core::IdentityGraph graph({kPersons, kPersons, kPersons});
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = a + 1; b < 3; ++b) {
      core::FtlEngine engine(eo);
      Status st = engine.Train(dbs[a], dbs[b]);
      if (!st.ok()) {
        std::printf("train(%u,%u) failed: %s\n", a, b,
                    st.ToString().c_str());
        return 1;
      }
      size_t links = 0;
      for (uint32_t qi = 0; qi < kPersons; ++qi) {
        auto r = engine.Query(dbs[a][qi], dbs[b],
                              core::Matcher::kNaiveBayes);
        if (!r.ok()) continue;
        for (const auto& c : r.value().candidates) {
          (void)graph.AddLink({a, qi},
                              {b, static_cast<uint32_t>(c.index)},
                              c.score);
          ++links;
        }
      }
      std::printf("  %s <-> %s: %zu pairwise links\n", names[a],
                  names[b], links);
    }
  }

  // --- Resolve identities. --------------------------------------------
  auto clusters = graph.Resolve(0.01);
  size_t pure = 0, complete = 0;
  for (const auto& cluster : clusters) {
    traj::OwnerId owner =
        dbs[cluster.members[0].source][cluster.members[0].index].owner();
    bool all_same = true;
    for (const auto& m : cluster.members) {
      if (dbs[m.source][m.index].owner() != owner) all_same = false;
    }
    if (all_same) ++pure;
    if (cluster.members.size() == 3) ++complete;
  }
  std::printf("\nResolved %zu identities (%zu conflicts skipped): "
              "%zu pure, %zu spanning all 3 sources\n",
              clusters.size(), graph.last_conflicts(), pure, complete);

  // --- Enrich one complete identity (paper Figure 2). ----------------
  for (const auto& cluster : clusters) {
    if (cluster.members.size() != 3) continue;
    const auto& m0 = cluster.members[0];
    const auto& m1 = cluster.members[1];
    core::EnrichmentOptions opts;
    opts.p_source_name = names[m0.source];
    opts.q_source_name = names[m1.source];
    auto enriched = core::Enrich(dbs[m0.source][m0.index],
                                 dbs[m1.source][m1.index], opts);
    if (!enriched.ok()) continue;
    std::printf("\nEnriched timeline of one resolved identity "
                "(densification x%.2f):\n%s",
                enriched.value().densification_factor,
                core::ToTableString(enriched.value(), 10).c_str());
    break;
  }
  return 0;
}
